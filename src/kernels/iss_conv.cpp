#include "kernels/iss_conv.hpp"

#include "common/check.hpp"

namespace spikestream::kernels {

namespace arch = spikestream::arch;

namespace {

struct ConvImage {
  arch::Addr sptr = 0, cidcs = 0, wbuf = 0, out = 0, next_rf = 0;
  int k = 0, in_w = 0, out_h = 0, out_w = 0, n_rfs = 0;
};

ConvImage setup_conv_image(arch::Cluster& cl, const compress::CsrIfmap& ifmap,
                           const snn::LayerWeights& weights, int n_cores) {
  SPK_CHECK(weights.out_c == 1, "ISS conv computes one output channel");
  SPK_CHECK(weights.in_c == ifmap.c(), "channel mismatch");
  SPK_CHECK(n_cores >= 1 && n_cores <= cl.config().num_workers,
            "bad core count");
  ConvImage img;
  img.k = weights.k;
  img.in_w = ifmap.w();
  img.out_h = ifmap.h() - img.k + 1;
  img.out_w = img.in_w - img.k + 1;
  img.n_rfs = img.out_h * img.out_w;

  cl.reset_allocators();
  const auto& sp = ifmap.s_ptr();
  img.sptr = cl.tcdm_alloc(static_cast<std::uint32_t>(sp.size() * 4));
  for (std::size_t i = 0; i < sp.size(); ++i) {
    cl.mem().store<std::uint32_t>(img.sptr + static_cast<arch::Addr>(i * 4),
                                  sp[i]);
  }
  const auto& ci = ifmap.c_idcs();
  img.cidcs =
      cl.tcdm_alloc(static_cast<std::uint32_t>((ci.size() * 2 + 7) & ~7u));
  for (std::size_t i = 0; i < ci.size(); ++i) {
    cl.mem().store<std::uint16_t>(img.cidcs + static_cast<arch::Addr>(i * 2),
                                  ci[i]);
  }
  img.wbuf = cl.tcdm_alloc(static_cast<std::uint32_t>(weights.v.size() * 8));
  for (std::size_t i = 0; i < weights.v.size(); ++i) {
    cl.mem().store<double>(img.wbuf + static_cast<arch::Addr>(i * 8),
                           static_cast<double>(weights.v[i]));
  }
  img.out = cl.tcdm_alloc(static_cast<std::uint32_t>(img.n_rfs * 8));
  img.next_rf = cl.tcdm_alloc(8);
  cl.mem().store<std::uint32_t>(img.next_rf, 0);
  return img;
}

IssConvResult collect_conv_result(arch::Cluster& cl, const ConvImage& img) {
  IssConvResult res;
  res.cycles = cl.run();
  res.perf = cl.aggregate_worker_perf();
  const auto tickets = cl.mem().load<std::uint32_t>(img.next_rf);
  res.rf_count = tickets >= static_cast<std::uint32_t>(img.n_rfs)
                     ? static_cast<std::uint64_t>(img.n_rfs)
                     : tickets;
  res.currents = snn::Tensor(img.out_h, img.out_w, 1);
  for (int i = 0; i < img.n_rfs; ++i) {
    res.currents.v[static_cast<std::size_t>(i)] = static_cast<float>(
        cl.mem().load<double>(img.out + static_cast<arch::Addr>(i * 8)));
  }
  return res;
}

}  // namespace

IssConvResult iss_conv_layer(arch::Cluster& cl,
                             const compress::CsrIfmap& ifmap,
                             const snn::LayerWeights& weights, int n_cores) {
  const ConvImage img = setup_conv_image(cl, ifmap, weights, n_cores);
  const int k = img.k;
  const int in_w = img.in_w;
  const int n_rfs = img.n_rfs;
  const int out_w = img.out_w;
  const arch::Addr sptr = img.sptr, cidcs = img.cidcs, wbuf = img.wbuf,
                   out = img.out, next_rf = img.next_rf;

  // --- SPMD program -----------------------------------------------------------
  arch::Asm a;
  a.csr_core_id(5);
  a.li(6, n_cores);
  a.blt(5, 6, "work");
  a.halt();
  a.label("work");
  a.li(5, next_rf);   // x5: ticket counter address
  a.li(7, n_rfs);     // x7: RF count
  a.li(10, sptr);
  a.li(11, cidcs);
  a.li(12, wbuf);
  a.li(13, out);
  a.li(20, 1);
  a.li(21, out_w);
  a.li(22, in_w);
  a.ssr_enable();

  a.label("steal");
  a.amoadd(6, 5, 20);       // x6 = my RF ticket (Section III-B)
  a.bge(6, 7, "done");
  a.divu(8, 6, 21);         // oy
  a.remu(9, 6, 21);         // ox
  a.fcvt_d_w(3, 0);         // acc = 0.0
  a.mul(14, 8, 22);
  a.add(14, 14, 9);         // pos0 = oy * in_w + ox
  a.slli(14, 14, 2);
  a.add(14, 14, 10);        // &s_ptr[pos0]

  for (int kh = 0; kh < k; ++kh) {
    for (int kw = 0; kw < k; ++kw) {
      const std::int64_t off = (static_cast<std::int64_t>(kh) * in_w + kw) * 4;
      const std::int64_t slab =
          (static_cast<std::int64_t>(kh) * k + kw) *
          static_cast<std::int64_t>(weights.in_c) * 8;
      const std::string skip =
          "skip_" + std::to_string(kh) + "_" + std::to_string(kw);
      a.lw(15, 14, off);        // p0 = s_ptr[pos]
      a.lw(16, 14, off + 4);    // p1 = s_ptr[pos + 1]
      a.sub(16, 16, 15);        // s_len
      a.beq(16, 0, skip);       // Listing 1c: if s_len != 0
      a.slli(17, 15, 1);
      a.add(17, 17, 11);        // &c_idcs[p0]
      a.ssr_idx(0, 17, 1);
      a.addi(18, 12, slab);     // &w[kh][kw][0]
      a.ssr_base(0, 18);
      a.ssr_len(0, 16);
      a.ssr_commit(0, arch::SsrMode::kIndirectRead);
      a.addi(16, 16, -1);
      a.frep(16, 1);
      a.fadd(3, arch::kSsr0, 3);  // ic += stream (II = fadd latency)
      a.label(skip);
    }
  }
  a.slli(19, 6, 3);
  a.add(19, 19, 13);
  a.fsd(3, 19, 0);  // blocks until the queued fadds drained
  a.j("steal");

  a.label("done");
  a.fpu_fence();
  a.ssr_disable();
  a.halt();

  cl.load_program(a.finish());
  return collect_conv_result(cl, img);
}

IssConvResult iss_conv_layer_baseline(arch::Cluster& cl,
                                      const compress::CsrIfmap& ifmap,
                                      const snn::LayerWeights& weights,
                                      int n_cores) {
  const ConvImage img = setup_conv_image(cl, ifmap, weights, n_cores);
  const int k = img.k;

  arch::Asm a;
  a.csr_core_id(5);
  a.li(6, n_cores);
  a.blt(5, 6, "work");
  a.halt();
  a.label("work");
  a.li(5, img.next_rf);
  a.li(7, img.n_rfs);
  a.li(10, img.sptr);
  a.li(11, img.cidcs);
  a.li(12, img.wbuf);
  a.li(13, img.out);
  a.li(20, 1);
  a.li(21, img.out_w);
  a.li(22, img.in_w);

  a.label("steal");
  a.amoadd(6, 5, 20);
  a.bge(6, 7, "done");
  a.divu(8, 6, 21);   // oy
  a.remu(9, 6, 21);   // ox
  a.fcvt_d_w(3, 0);   // acc = 0.0
  a.mul(14, 8, 22);
  a.add(14, 14, 9);
  a.slli(14, 14, 2);
  a.add(14, 14, 10);  // &s_ptr[pos0]

  for (int kh = 0; kh < k; ++kh) {
    for (int kw = 0; kw < k; ++kw) {
      const std::int64_t off =
          (static_cast<std::int64_t>(kh) * img.in_w + kw) * 4;
      const std::int64_t slab =
          (static_cast<std::int64_t>(kh) * k + kw) *
          static_cast<std::int64_t>(weights.in_c) * 8;
      const std::string skip =
          "skip_" + std::to_string(kh) + "_" + std::to_string(kw);
      const std::string spva =
          "spva_" + std::to_string(kh) + "_" + std::to_string(kw);
      a.lw(15, 14, off);
      a.lw(16, 14, off + 4);
      a.sub(16, 16, 15);
      a.beq(16, 0, skip);
      a.slli(17, 15, 1);
      a.add(17, 17, 11);      // &c_idcs[p0]
      a.addi(18, 12, slab);   // &w[kh][kw][0]
      a.li(23, 0);            // iter
      // Listing 1b, verbatim:
      a.label(spva);
      a.lhu(24, 17, 0);       // lw t0, 0(%c_idcs_i)
      a.slli(24, 24, 3);      // slli t0, t0, 3
      a.add(24, 24, 18);      // add t0, t0, %w
      a.fld(4, 24, 0);        // fld ft1, 0(t0)
      a.addi(17, 17, 2);      // addi %c_idcs_i, 2
      a.addi(23, 23, 1);      // addi %iter, 1
      a.fadd(3, 4, 3);        // fadd %ic, ft1, %ic
      a.bne(23, 16, spva);    // bne %iter, %s_len, SpVA
      a.label(skip);
    }
  }
  a.slli(19, 6, 3);
  a.add(19, 19, 13);
  a.fsd(3, 19, 0);
  a.j("steal");

  a.label("done");
  a.fpu_fence();
  a.halt();

  cl.load_program(a.finish());
  return collect_conv_result(cl, img);
}

}  // namespace spikestream::kernels
