// Mechanistic cycle-cost model of the SpikeStream kernels at SpVA (sparse
// vector accumulation) granularity. Every constant corresponds to a concrete
// microarchitectural mechanism of the modeled Snitch core (see arch/core.hpp)
// and the model is cross-validated against the ISS on the paper's inner loops
// (tests/test_model_vs_iss.cpp). Units are cycles at 1 GHz.
//
// Key mechanisms (Section III / IV-A of the paper):
//  * Baseline SpVA element (Listing 1b): 8 issued instructions, one load-use
//    bubble (lw -> slli) and a taken-branch flush => ~11 cycles/element.
//  * SpikeStream SpVA (Listing 1c): the FPU streams one indexed fadd per
//    element at II = fadd latency (single accumulator register), while the
//    integer core prepares the *next* stream in the SSR shadow registers =>
//    per-SpVA time = max(II * s_len, setup) + a small non-overlapped residue.
//    Short streams leave the integer pipe dominant — the paper's layer-2
//    effect.
//  * Indirect gathers from 8 cores conflict in the 32-bank TCDM; the stream
//    time stretches by a factor from the bank-occupancy model below.
#pragma once

#include <algorithm>
#include <cmath>

#include "arch/dram/dram.hpp"
#include "common/float_formats.hpp"

namespace spikestream::kernels {

struct CostParams {
  // --- integer pipeline ----------------------------------------------------
  double baseline_elem_cycles = 11.0;  ///< 8 instrs + load-use + branch flush
  double baseline_spva_overhead = 22.0;  ///< Listing 1a outer bookkeeping
  double dense_elem_cycles_baseline = 4.0;  ///< 2x-unrolled fmadd loop
  double dense_spva_overhead = 10.0;

  // --- SpikeStream streaming -----------------------------------------------
  double ss_setup = 19.0;   ///< coo/s_ptr/s_len + SSR shadow cfg + frep issue
  double ss_residue = 4.0;  ///< stream fill/drain not hidden by overlap
  double dense_setup = 14.0;   ///< two affine SSRs, no s_ptr loads
  double dense_residue = 6.0;

  // --- FPU ------------------------------------------------------------------
  double fadd_latency = 2.0;   ///< single-accumulator reduction II
  double fmadd_latency = 3.0;
  int dense_accumulators = 2;  ///< encode matmul interleaves 2 accumulators

  // --- scheduling / activation ----------------------------------------------
  double steal_cost = 8.0;      ///< amotized atomic next_rf fetch per RF
  double act_fixed = 8.0;       ///< LIF threshold + branch per SIMD group
  double act_per_lane = 2.0;    ///< bit-mask/extract per lane (Section III-C)
  double act_per_spike = 4.0;   ///< atomic append to ofmap c_idcs/s_ptr
  double fp8_unpack_extra = 2.0;  ///< the two extra unpack iterations (IV-A)
  double fc_prescale_per_spike = 3.0;  ///< FC index scaling (no strided SSR)

  // --- stage pipeline --------------------------------------------------------
  /// Integer-core cycles to enqueue one output spike into an inter-stage
  /// FIFO (stage-parallel execution only: the producing cluster group packs
  /// each boundary spike into the handoff buffer alongside the activation
  /// append). Charged on the boundary layer of every pipeline stage; never
  /// charged in data-parallel or single-cluster runs, so historical cycle
  /// counts are unaffected.
  double fifo_push_per_spike = 0.5;

  // --- memory system ----------------------------------------------------------
  int tcdm_banks = 32;
  double icache_layer_warmup = 300.0;  ///< cold I$ misses per layer launch
  /// External-memory model the DMA cost queries price transfers from. The
  /// default is flat legacy (bytes at kDramBytesPerCycle plus one
  /// kDramRequestLatency per transfer — bit-identical to the historical
  /// expressions); arch::DramConfig::banked() opts into row-buffer timing.
  arch::DramConfig dram;

  /// Dense-matmul initiation interval (two interleaved accumulators).
  double dense_ii() const {
    return std::max(1.0, fmadd_latency / dense_accumulators);
  }

  /// Expected TCDM serialization factor when `cores` requesters each issue
  /// `rate` accesses/cycle into `tcdm_banks` banks (M/D/1-style occupancy:
  /// throughput of random requests over B banks is B * (1 - (1-1/B)^A)).
  double conflict_stretch(double rate, int cores) const {
    const double a = std::max(rate * cores, 1e-9);
    const double b = tcdm_banks;
    const double served = b * (1.0 - std::pow(1.0 - 1.0 / b, a));
    return std::max(1.0, a / served);
  }
};

/// Cycles for one baseline SpVA of `s_len` spikes (one SIMD co-group).
inline double baseline_spva_cycles(const CostParams& p, double s_len) {
  return s_len * p.baseline_elem_cycles + p.baseline_spva_overhead;
}

/// Cycles for one SpikeStream SpVA: FPU stream overlapped with the integer
/// core's setup of the next stream. The drain/fill residue rides on the
/// stream side only — a setup-bound SpVA is gated purely by the integer pipe
/// (validated against the ISS in tests/test_model_vs_iss.cpp).
inline double spikestream_spva_cycles(const CostParams& p, double s_len,
                                      double stretch) {
  const double stream = p.fadd_latency * s_len * stretch + p.ss_residue;
  return std::max(stream, p.ss_setup);
}

/// Cycles for one dense dot-product of `len` SIMD fmadds (encode layer).
inline double baseline_dense_dot_cycles(const CostParams& p, double len) {
  return len * p.dense_elem_cycles_baseline + p.dense_spva_overhead;
}

inline double spikestream_dense_dot_cycles(const CostParams& p, double len,
                                           double stretch) {
  const double stream = p.dense_ii() * len * stretch + p.dense_residue;
  return std::max(stream, p.dense_setup);
}

/// Integer-core cycles to threshold one SIMD group and emit its spikes.
inline double activation_cycles(const CostParams& p, int simd_lanes,
                                double spikes_in_group, bool fp8) {
  return p.act_fixed + p.act_per_lane * simd_lanes +
         p.act_per_spike * spikes_in_group +
         (fp8 ? p.fp8_unpack_extra : 0.0);
}

}  // namespace spikestream::kernels
