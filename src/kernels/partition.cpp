#include "kernels/partition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.hpp"
#include "compress/csr_ifmap.hpp"

namespace spikestream::kernels {

namespace {

int n_groups(int channels, int simd) { return (channels + simd - 1) / simd; }

/// Largest extent of the even `s * count / active` split the range builders
/// use, computed without materializing the ranges (the adaptive re-planner
/// calls the estimates on the hot path and must not allocate).
int max_even_split_extent(int count, int active) {
  active = std::max(1, std::min(active, count));
  int worst = 0;
  for (int s = 0; s < active; ++s) {
    worst = std::max(worst, (s + 1) * count / active - s * count / active);
  }
  return worst;
}

/// max_extent of channel_slices(channels, simd, clusters), allocation-free:
/// slices are even splits of the SIMD-group space, with the last one capped
/// to the channel count.
int max_channel_slice_extent(int channels, int simd, int clusters) {
  const int groups = n_groups(channels, simd);
  const int active = std::min(clusters, groups);
  int worst = 0;
  for (int s = 0; s < active; ++s) {
    const int lo = (s * groups / active) * simd;
    const int hi = std::min(((s + 1) * groups / active) * simd, channels);
    worst = std::max(worst, hi - lo);
  }
  return worst;
}

/// Estimated cycles of one conv/encode output position carrying `groups`
/// SIMD output-channel groups, at planning density `density`.
double position_cost(const snn::LayerSpec& spec, const RunOptions& opt,
                     int groups, double density) {
  const CostParams& p = opt.cost;
  const int simd = common::simd_lanes(opt.fmt);
  const bool fp8 = opt.fmt == common::FpFormat::FP8;
  const double k2 = static_cast<double>(spec.k) * spec.k;
  const double act = activation_cycles(p, simd, density * simd, fp8);
  if (spec.kind == snn::LayerKind::kEncodeConv) {
    const double dot = k2 * spec.in_c;
    if (opt.variant == Variant::kBaseline) {
      return (baseline_dense_dot_cycles(p, dot) + act) * groups;
    }
    const double fpu = (p.dense_ii() * dot + p.dense_residue) * groups;
    const double integer = (p.dense_setup + act) * groups;
    return std::max(fpu, integer);
  }
  const double elems = density * spec.in_c * k2;
  switch (opt.variant) {
    case Variant::kBaseline:
      return (elems * p.baseline_elem_cycles + p.baseline_spva_overhead * k2 +
              act) *
             groups;
    case Variant::kDenseNoTc: {
      const double fpu =
          (p.fadd_latency * k2 * spec.in_c + p.ss_residue * k2) * groups;
      const double integer =
          p.steal_cost + (p.dense_setup * k2 + act) * groups;
      return std::max(fpu, integer);
    }
    case Variant::kSpikeStream:
    default: {
      const double fpu = (p.fadd_latency * elems + p.ss_residue * k2) * groups;
      const double integer = p.steal_cost + (p.ss_setup * k2 + act) * groups;
      return std::max(fpu, integer);
    }
  }
}

}  // namespace

const char* partition_strategy_name(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kOutputChannel: return "output-channel";
    case PartitionStrategy::kIfmapStripe: return "ifmap-stripe";
    case PartitionStrategy::kHybrid: return "hybrid";
  }
  return "?";
}

const char* exec_mode_name(ExecMode m) {
  switch (m) {
    case ExecMode::kAuto: return "auto";
    case ExecMode::kDataParallel: return "data-parallel";
    case ExecMode::kStageParallel: return "stage-parallel";
    case ExecMode::kHybrid: return "hybrid";
  }
  return "?";
}

const char* shard_axis_name(ShardAxis a) {
  switch (a) {
    case ShardAxis::kOutputChannel: return "out-channel";
    case ShardAxis::kIfmapStripe: return "row-stripe";
    case ShardAxis::kFanIn: return "fan-in";
  }
  return "?";
}

std::uint64_t layer_signature(const snn::LayerSpec& spec) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  mix(spec.name.data(), spec.name.size());
  const int dims[] = {static_cast<int>(spec.kind), spec.in_h, spec.in_w,
                      spec.in_c,  spec.k,          spec.out_c};
  mix(dims, sizeof(dims));
  return h;
}

Partitioner::Partitioner(const RunOptions& opt, int clusters,
                         PartitionStrategy strategy)
    : opt_(opt), clusters_(std::max(1, clusters)), strategy_(strategy) {}

std::vector<ShardRange> Partitioner::channel_slices(int out_c, int simd,
                                                    int clusters) {
  const int groups = n_groups(out_c, simd);
  const int active = std::min(clusters, groups);
  std::vector<ShardRange> sl;
  sl.reserve(static_cast<std::size_t>(std::max(active, 1)));
  for (int s = 0; s < active; ++s) {
    const int g_lo = s * groups / active;
    const int g_hi = (s + 1) * groups / active;
    const int lo = g_lo * simd;
    const int hi = std::min(g_hi * simd, out_c);
    if (hi > lo) sl.push_back({lo, hi});
  }
  return sl;
}

std::vector<ShardRange> Partitioner::row_stripes(int out_rows, int clusters) {
  const int active = std::min(clusters, std::max(out_rows, 1));
  std::vector<ShardRange> sl;
  sl.reserve(static_cast<std::size_t>(active));
  for (int s = 0; s < active; ++s) {
    const int lo = s * out_rows / active;
    const int hi = (s + 1) * out_rows / active;
    if (hi > lo) sl.push_back({lo, hi});
  }
  return sl;
}

std::vector<ShardRange> Partitioner::fanin_segments(int in_c, int simd,
                                                    int clusters) {
  // Same SIMD-aligned even split as the channel slicer, applied to the input
  // channel space: each cluster owns a disjoint weight-row band.
  return channel_slices(in_c, simd, clusters);
}

double Partitioner::estimate_output_channel(const snn::LayerSpec& spec,
                                            double density) const {
  const CostParams& p = opt_.cost;
  const int simd = common::simd_lanes(opt_.fmt);
  const int worst_groups = n_groups(
      max_channel_slice_extent(spec.out_c, simd, clusters_), simd);
  if (spec.kind == snn::LayerKind::kFc) {
    const double nnz = density * spec.in_c;
    const double fp8_act = activation_cycles(
        p, simd, density * simd, opt_.fmt == common::FpFormat::FP8);
    const double per_group =
        std::max(p.fadd_latency * nnz + p.ss_residue, p.ss_setup) + fp8_act;
    const double rounds = std::ceil(static_cast<double>(worst_groups) /
                                    std::max(1, opt_.cores));
    return rounds * per_group + nnz * p.fc_prescale_per_spike / opt_.cores +
           p.icache_layer_warmup;
  }
  const double positions =
      static_cast<double>(spec.out_h()) * static_cast<double>(spec.out_w());
  return positions * position_cost(spec, opt_, worst_groups, density) /
             std::max(1, opt_.cores) +
         p.icache_layer_warmup;
}

double Partitioner::estimate_ifmap_stripe(const snn::LayerSpec& spec,
                                          double density) const {
  SPK_CHECK(spec.kind != snn::LayerKind::kFc,
            "ifmap stripes need spatial rows; FC layers use fan-in segments");
  const CostParams& p = opt_.cost;
  const int simd = common::simd_lanes(opt_.fmt);
  const double worst_positions =
      static_cast<double>(max_even_split_extent(spec.out_h(), clusters_)) *
      spec.out_w();
  const int groups = n_groups(spec.out_c, simd);
  return worst_positions * position_cost(spec, opt_, groups, density) /
             std::max(1, opt_.cores) +
         p.icache_layer_warmup;
}

double Partitioner::estimate_fanin(const snn::LayerSpec& spec,
                                   double density) const {
  SPK_CHECK(spec.kind == snn::LayerKind::kFc,
            "fan-in segmentation is an FC strategy");
  const CostParams& p = opt_.cost;
  const int simd = common::simd_lanes(opt_.fmt);
  const double nnz_shard =
      density * static_cast<double>(
                    max_channel_slice_extent(spec.in_c, simd, clusters_));
  const int groups = n_groups(spec.out_c, simd);
  const double rounds =
      std::ceil(static_cast<double>(groups) / std::max(1, opt_.cores));
  const double accumulate =
      rounds * std::max(p.fadd_latency * nnz_shard + p.ss_residue, p.ss_setup) +
      nnz_shard * p.fc_prescale_per_spike / opt_.cores;
  // Sequential tail on the merging cluster: stream (n-1) partial ofmap
  // vectors over the NoC, add them group-wise, then run the activation once.
  const double partials = static_cast<double>(std::min(
                              clusters_, n_groups(spec.in_c, simd))) -
                          1.0;
  // Partial vectors stream at the global port width — the same single
  // source of truth (CostParams::dram) the DMA cost queries price from.
  const double reduce =
      partials * groups * p.fadd_latency +
      partials * spec.out_c * common::fp_bytes(opt_.fmt) /
          p.dram.bytes_per_cycle;
  const double act =
      rounds * activation_cycles(p, simd, density * simd,
                                 opt_.fmt == common::FpFormat::FP8);
  return accumulate + reduce + act + p.icache_layer_warmup;
}

double Partitioner::estimate_axis(const snn::LayerSpec& spec, ShardAxis axis,
                                  double density) const {
  switch (axis) {
    case ShardAxis::kOutputChannel:
      return estimate_output_channel(spec, density);
    case ShardAxis::kIfmapStripe:
      return estimate_ifmap_stripe(spec, density);
    case ShardAxis::kFanIn:
      return estimate_fanin(spec, density);
  }
  return 0.0;
}

LayerPlan Partitioner::make_axis_plan(const snn::LayerSpec& spec,
                                      ShardAxis axis) const {
  const int simd = common::simd_lanes(opt_.fmt);
  LayerPlan plan;
  plan.axis = axis;
  if (clusters_ > 1) {
    switch (axis) {
      case ShardAxis::kOutputChannel:
        plan.shards = channel_slices(spec.out_c, simd, clusters_);
        break;
      case ShardAxis::kIfmapStripe:
        plan.shards = row_stripes(spec.out_h(), clusters_);
        break;
      case ShardAxis::kFanIn:
        plan.shards = fanin_segments(spec.in_c, simd, clusters_);
        break;
    }
  }
  // A single-shard fan-in plan would pay reduction bookkeeping for nothing;
  // collapse it (and any other degenerate split) to one output-channel shard.
  if (plan.shards.size() <= 1) {
    plan.axis = ShardAxis::kOutputChannel;
    plan.shards = {{0, spec.out_c}};
  }
  return plan;
}

LayerPlan Partitioner::plan_layer(const snn::LayerSpec& spec,
                                  double density) const {
  const bool fc = spec.kind == snn::LayerKind::kFc;
  if (clusters_ <= 1) {
    LayerPlan plan;
    plan.shards = {{0, spec.out_c}};
    return plan;
  }
  const ShardAxis alt_axis =
      fc ? ShardAxis::kFanIn : ShardAxis::kIfmapStripe;
  switch (strategy_) {
    case PartitionStrategy::kOutputChannel:
      return make_axis_plan(spec, ShardAxis::kOutputChannel);
    case PartitionStrategy::kIfmapStripe:
      return make_axis_plan(spec, alt_axis);
    case PartitionStrategy::kHybrid:
      break;
  }
  const double oc = estimate_output_channel(spec, density);
  const double alt = estimate_axis(spec, alt_axis, density);
  // Prefer the historical axis unless the alternative is clearly ahead:
  // output-channel tiles conserve activity exactly and need no halo or
  // reduction bookkeeping, so a marginal estimate should not flip them.
  LayerPlan plan;
  if (alt < 0.95 * oc) {
    plan = make_axis_plan(spec, alt_axis);
    plan.est_cycles = alt;
    plan.est_alt_cycles = oc;
  } else {
    plan = make_axis_plan(spec, ShardAxis::kOutputChannel);
    plan.est_cycles = oc;
    plan.est_alt_cycles = alt;
  }
  return plan;
}

ShardPlan Partitioner::plan_network(const snn::Network& net,
                                    double density) const {
  ShardPlan plan;
  plan.strategy = strategy_;
  plan.clusters = clusters_;
  plan.layers.reserve(net.num_layers());
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    plan.layers.push_back(plan_layer(net.layer(l), density));
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Stage-parallel pipeline planning
// ---------------------------------------------------------------------------

double Partitioner::layer_cost(const snn::LayerSpec& spec, int group,
                               double density) const {
  const Partitioner sub(opt_, std::max(1, group), strategy_);
  const double oc = sub.estimate_output_channel(spec, density);
  if (group <= 1) return oc;
  const ShardAxis alt_axis = spec.kind == snn::LayerKind::kFc
                                 ? ShardAxis::kFanIn
                                 : ShardAxis::kIfmapStripe;
  switch (strategy_) {
    case PartitionStrategy::kOutputChannel:
      return oc;
    case PartitionStrategy::kIfmapStripe:
      return sub.estimate_axis(spec, alt_axis, density);
    case PartitionStrategy::kHybrid:
      break;
  }
  // Mirror plan_layer's hysteresis so the stage estimate prices the axis a
  // group-sized partitioner would actually execute with.
  const double alt = sub.estimate_axis(spec, alt_axis, density);
  return alt < 0.95 * oc ? alt : oc;
}

namespace {

/// Estimated inter-stage handoff after `spec` at planning density: the
/// boundary layer's compressed spike payload crossing the fabric to the next
/// stage's owner plus the per-spike FIFO enqueue on the producer.
struct HandoffEstimate {
  double bytes = 0;
  double cycles = 0;
};

HandoffEstimate estimate_handoff(const snn::LayerSpec& spec,
                                 const RunOptions& opt,
                                 const arch::NocParams& noc, double density) {
  const double elems = static_cast<double>(spec.out_h()) *
                       static_cast<double>(spec.out_w()) *
                       static_cast<double>(spec.out_c);
  const double nnz = density * elems;
  HandoffEstimate h;
  h.bytes = static_cast<double>(compress::CsrIfmap::footprint_from_count(
      static_cast<std::size_t>(nnz), spec.out_h(), spec.out_w()));
  const double transfer =
      noc.topology == arch::NocTopology::kLegacyCeiling
          ? arch::noc_transfer_cycles(noc, h.bytes)
          // Point-to-point route: injection + (worst case) one ring traversal
          // + ejection, serialized at one link's width.
          : noc.hop_latency * 3.0 + h.bytes / noc.link_bytes_per_cycle;
  h.cycles = transfer + nnz * opt.cost.fifo_push_per_spike;
  return h;
}

}  // namespace

StagePlan Partitioner::plan_pipeline(const snn::Network& net,
                                     const PipelineConfig& cfg,
                                     const arch::NocParams& noc,
                                     double density) const {
  SPK_CHECK(net.num_layers() > 0, "pipeline planning needs at least one layer");
  // Network stores its specs contiguously; plan over them directly.
  return plan_pipeline(std::span(&net.layer(0), net.num_layers()), cfg, noc,
                       density);
}

StagePlan Partitioner::plan_pipeline(std::span<const snn::LayerSpec> layers,
                                     const PipelineConfig& cfg,
                                     const arch::NocParams& noc,
                                     double density) const {
  const int L = static_cast<int>(layers.size());
  SPK_CHECK(L > 0, "pipeline planning needs at least one layer");
  const int C = clusters_;
  const double lanes = static_cast<double>(std::max(1, cfg.batch_lanes));

  // Per-layer service estimates at every group size that can occur, and the
  // boundary handoff after each layer.
  std::vector<std::vector<double>> cost(static_cast<std::size_t>(L));
  std::vector<HandoffEstimate> handoff(static_cast<std::size_t>(L));
  for (int l = 0; l < L; ++l) {
    cost[static_cast<std::size_t>(l)].resize(static_cast<std::size_t>(C) + 1);
    for (int g = 1; g <= C; ++g) {
      cost[static_cast<std::size_t>(l)][static_cast<std::size_t>(g)] =
          layer_cost(layers[static_cast<std::size_t>(l)], g, density);
    }
    handoff[static_cast<std::size_t>(l)] =
        estimate_handoff(layers[static_cast<std::size_t>(l)], opt_, noc,
                         density);
  }
  const double dp_total = [&] {
    double t = 0;
    for (int l = 0; l < L; ++l) {
      t += cost[static_cast<std::size_t>(l)][static_cast<std::size_t>(C)];
    }
    return t;
  }();

  // Build the balanced S-stage partition (DP minimizing the max stage
  // service, boundary handoffs included) and return its amortized per-sample
  // cost; the stage list lands in `out`.
  auto build = [&](int S, std::vector<PipelineStage>& out) {
    auto group_size = [&](int s) { return (s + 1) * C / S - s * C / S; };
    auto stage_service = [&](int i, int j, int s) {
      const int g = group_size(s);
      double svc = 0;
      for (int l = i; l < j; ++l) {
        svc += cost[static_cast<std::size_t>(l)][static_cast<std::size_t>(g)];
      }
      if (s < S - 1) svc += handoff[static_cast<std::size_t>(j - 1)].cycles;
      return svc;
    };
    constexpr double kInf = std::numeric_limits<double>::infinity();
    // f[j][s] = minimal achievable max-stage-service covering layers [0, j)
    // with stages [0, s); parent[j][s] reconstructs the split points.
    std::vector<std::vector<double>> f(
        static_cast<std::size_t>(L) + 1,
        std::vector<double>(static_cast<std::size_t>(S) + 1, kInf));
    std::vector<std::vector<int>> parent(
        static_cast<std::size_t>(L) + 1,
        std::vector<int>(static_cast<std::size_t>(S) + 1, -1));
    f[0][0] = 0;
    for (int s = 1; s <= S; ++s) {
      for (int j = s; j <= L - (S - s); ++j) {
        for (int i = s - 1; i < j; ++i) {
          if (f[static_cast<std::size_t>(i)][static_cast<std::size_t>(s - 1)] ==
              kInf) {
            continue;
          }
          const double v = std::max(
              f[static_cast<std::size_t>(i)][static_cast<std::size_t>(s - 1)],
              stage_service(i, j, s - 1));
          if (v < f[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)]) {
            f[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] = v;
            parent[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)] =
                i;
          }
        }
      }
    }
    out.clear();
    out.resize(static_cast<std::size_t>(S));
    int j = L;
    for (int s = S; s >= 1; --s) {
      const int i =
          parent[static_cast<std::size_t>(j)][static_cast<std::size_t>(s)];
      PipelineStage& st = out[static_cast<std::size_t>(s - 1)];
      st.layer_lo = i;
      st.layer_hi = j;
      st.cluster_lo = (s - 1) * C / S;
      st.cluster_hi = s * C / S;
      st.est_service_cycles = stage_service(i, j, s - 1);
      st.est_handoff_bytes =
          s < S ? handoff[static_cast<std::size_t>(j - 1)].bytes : 0.0;
      j = i;
    }
    double steady = 0, fill = 0;
    for (const PipelineStage& st : out) {
      steady = std::max(steady, st.est_service_cycles);
      fill += st.est_service_cycles;
    }
    return (fill + (lanes - 1.0) * steady) / lanes;
  };

  auto classify = [&](const std::vector<PipelineStage>& stages) {
    if (stages.size() <= 1) return ExecMode::kDataParallel;
    for (const PipelineStage& st : stages) {
      if (st.clusters() > 1) return ExecMode::kHybrid;
    }
    return ExecMode::kStageParallel;
  };
  auto admissible = [&](ExecMode mode) {
    return cfg.mode == ExecMode::kAuto || cfg.mode == mode;
  };

  int s_max = std::min(C, L);
  if (cfg.max_stages > 0) s_max = std::min(s_max, cfg.max_stages);

  StagePlan best;
  double best_cost = std::numeric_limits<double>::infinity();
  bool found = false;
  std::vector<PipelineStage> stages;
  for (int S = 1; S <= s_max; ++S) {
    const double amortized = build(S, stages);
    const ExecMode mode = classify(stages);
    // A forced mode can be unrealizable (pure stage-parallel needs as many
    // layers as clusters; a 2-cluster hybrid has no multi-cluster group to
    // give). Admit the nearest shape when the sweep would otherwise end
    // empty.
    const bool fallback = cfg.mode != ExecMode::kAuto && S == s_max && !found;
    if (!admissible(mode) && !fallback) continue;
    if (amortized < best_cost || !found) {
      best_cost = amortized;
      best.mode = mode;
      best.stages = stages;
      found = true;
    }
  }
  SPK_CHECK(found, "pipeline planner found no admissible stage shape for mode "
                       << exec_mode_name(cfg.mode));
  best.est_steady_cycles = 0;
  best.est_fill_cycles = 0;
  for (const PipelineStage& st : best.stages) {
    best.est_steady_cycles =
        std::max(best.est_steady_cycles, st.est_service_cycles);
    best.est_fill_cycles += st.est_service_cycles;
  }
  best.est_dp_cycles = dp_total;
  return best;
}

}  // namespace spikestream::kernels
