#include "kernels/partition.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace spikestream::kernels {

namespace {

/// Assumed ifmap density at plan time. Plans are computed once per network,
/// before any input exists; the paper's workloads fire in the 10–30% range,
/// and the axis ranking is insensitive to the exact value (it cancels out of
/// every term that scales with occupancy).
constexpr double kPlanDensity = 0.15;

int n_groups(int channels, int simd) { return (channels + simd - 1) / simd; }

/// Estimated cycles of one conv/encode output position carrying `groups`
/// SIMD output-channel groups, at the planning density.
double position_cost(const snn::LayerSpec& spec, const RunOptions& opt,
                     int groups) {
  const CostParams& p = opt.cost;
  const int simd = common::simd_lanes(opt.fmt);
  const bool fp8 = opt.fmt == common::FpFormat::FP8;
  const double k2 = static_cast<double>(spec.k) * spec.k;
  const double act = activation_cycles(p, simd, kPlanDensity * simd, fp8);
  if (spec.kind == snn::LayerKind::kEncodeConv) {
    const double dot = k2 * spec.in_c;
    if (opt.variant == Variant::kBaseline) {
      return (baseline_dense_dot_cycles(p, dot) + act) * groups;
    }
    const double fpu = (p.dense_ii() * dot + p.dense_residue) * groups;
    const double integer = (p.dense_setup + act) * groups;
    return std::max(fpu, integer);
  }
  const double elems = kPlanDensity * spec.in_c * k2;
  switch (opt.variant) {
    case Variant::kBaseline:
      return (elems * p.baseline_elem_cycles + p.baseline_spva_overhead * k2 +
              act) *
             groups;
    case Variant::kDenseNoTc: {
      const double fpu =
          (p.fadd_latency * k2 * spec.in_c + p.ss_residue * k2) * groups;
      const double integer =
          p.steal_cost + (p.dense_setup * k2 + act) * groups;
      return std::max(fpu, integer);
    }
    case Variant::kSpikeStream:
    default: {
      const double fpu = (p.fadd_latency * elems + p.ss_residue * k2) * groups;
      const double integer = p.steal_cost + (p.ss_setup * k2 + act) * groups;
      return std::max(fpu, integer);
    }
  }
}

int max_extent(const std::vector<ShardRange>& shards) {
  int m = 0;
  for (const ShardRange& s : shards) m = std::max(m, s.extent());
  return m;
}

}  // namespace

const char* partition_strategy_name(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kOutputChannel: return "output-channel";
    case PartitionStrategy::kIfmapStripe: return "ifmap-stripe";
    case PartitionStrategy::kHybrid: return "hybrid";
  }
  return "?";
}

const char* shard_axis_name(ShardAxis a) {
  switch (a) {
    case ShardAxis::kOutputChannel: return "out-channel";
    case ShardAxis::kIfmapStripe: return "row-stripe";
    case ShardAxis::kFanIn: return "fan-in";
  }
  return "?";
}

std::uint64_t layer_signature(const snn::LayerSpec& spec) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  auto mix = [&h](const void* data, std::size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  mix(spec.name.data(), spec.name.size());
  const int dims[] = {static_cast<int>(spec.kind), spec.in_h, spec.in_w,
                      spec.in_c,  spec.k,          spec.out_c};
  mix(dims, sizeof(dims));
  return h;
}

Partitioner::Partitioner(const RunOptions& opt, int clusters,
                         PartitionStrategy strategy)
    : opt_(opt), clusters_(std::max(1, clusters)), strategy_(strategy) {}

std::vector<ShardRange> Partitioner::channel_slices(int out_c, int simd,
                                                    int clusters) {
  const int groups = n_groups(out_c, simd);
  const int active = std::min(clusters, groups);
  std::vector<ShardRange> sl;
  sl.reserve(static_cast<std::size_t>(std::max(active, 1)));
  for (int s = 0; s < active; ++s) {
    const int g_lo = s * groups / active;
    const int g_hi = (s + 1) * groups / active;
    const int lo = g_lo * simd;
    const int hi = std::min(g_hi * simd, out_c);
    if (hi > lo) sl.push_back({lo, hi});
  }
  return sl;
}

std::vector<ShardRange> Partitioner::row_stripes(int out_rows, int clusters) {
  const int active = std::min(clusters, std::max(out_rows, 1));
  std::vector<ShardRange> sl;
  sl.reserve(static_cast<std::size_t>(active));
  for (int s = 0; s < active; ++s) {
    const int lo = s * out_rows / active;
    const int hi = (s + 1) * out_rows / active;
    if (hi > lo) sl.push_back({lo, hi});
  }
  return sl;
}

std::vector<ShardRange> Partitioner::fanin_segments(int in_c, int simd,
                                                    int clusters) {
  // Same SIMD-aligned even split as the channel slicer, applied to the input
  // channel space: each cluster owns a disjoint weight-row band.
  return channel_slices(in_c, simd, clusters);
}

double Partitioner::estimate_output_channel(const snn::LayerSpec& spec) const {
  const CostParams& p = opt_.cost;
  const int simd = common::simd_lanes(opt_.fmt);
  const auto shards = channel_slices(spec.out_c, simd, clusters_);
  const int worst_groups =
      n_groups(max_extent(shards), simd);  // slices are group-aligned
  if (spec.kind == snn::LayerKind::kFc) {
    const double nnz = kPlanDensity * spec.in_c;
    const double fp8_act = activation_cycles(
        p, simd, kPlanDensity * simd, opt_.fmt == common::FpFormat::FP8);
    const double per_group =
        std::max(p.fadd_latency * nnz + p.ss_residue, p.ss_setup) + fp8_act;
    const double rounds = std::ceil(static_cast<double>(worst_groups) /
                                    std::max(1, opt_.cores));
    return rounds * per_group + nnz * p.fc_prescale_per_spike / opt_.cores +
           p.icache_layer_warmup;
  }
  const double positions =
      static_cast<double>(spec.out_h()) * static_cast<double>(spec.out_w());
  return positions * position_cost(spec, opt_, worst_groups) /
             std::max(1, opt_.cores) +
         p.icache_layer_warmup;
}

double Partitioner::estimate_ifmap_stripe(const snn::LayerSpec& spec) const {
  SPK_CHECK(spec.kind != snn::LayerKind::kFc,
            "ifmap stripes need spatial rows; FC layers use fan-in segments");
  const CostParams& p = opt_.cost;
  const int simd = common::simd_lanes(opt_.fmt);
  const auto shards = row_stripes(spec.out_h(), clusters_);
  const double worst_positions =
      static_cast<double>(max_extent(shards)) * spec.out_w();
  const int groups = n_groups(spec.out_c, simd);
  return worst_positions * position_cost(spec, opt_, groups) /
             std::max(1, opt_.cores) +
         p.icache_layer_warmup;
}

double Partitioner::estimate_fanin(const snn::LayerSpec& spec) const {
  SPK_CHECK(spec.kind == snn::LayerKind::kFc,
            "fan-in segmentation is an FC strategy");
  const CostParams& p = opt_.cost;
  const int simd = common::simd_lanes(opt_.fmt);
  const auto shards = fanin_segments(spec.in_c, simd, clusters_);
  const double nnz_shard =
      kPlanDensity * static_cast<double>(max_extent(shards));
  const int groups = n_groups(spec.out_c, simd);
  const double rounds =
      std::ceil(static_cast<double>(groups) / std::max(1, opt_.cores));
  const double accumulate =
      rounds * std::max(p.fadd_latency * nnz_shard + p.ss_residue, p.ss_setup) +
      nnz_shard * p.fc_prescale_per_spike / opt_.cores;
  // Sequential tail on the merging cluster: stream (n-1) partial ofmap
  // vectors over the NoC, add them group-wise, then run the activation once.
  const double partials = static_cast<double>(shards.size()) - 1.0;
  const double reduce =
      partials * groups * p.fadd_latency +
      partials * spec.out_c * common::fp_bytes(opt_.fmt) / 64.0;
  const double act =
      rounds * activation_cycles(p, simd, kPlanDensity * simd,
                                 opt_.fmt == common::FpFormat::FP8);
  return accumulate + reduce + act + p.icache_layer_warmup;
}

LayerPlan Partitioner::plan_layer(const snn::LayerSpec& spec) const {
  const int simd = common::simd_lanes(opt_.fmt);
  const bool fc = spec.kind == snn::LayerKind::kFc;
  LayerPlan plan;
  if (clusters_ <= 1) {
    plan.shards = {{0, spec.out_c}};
    return plan;
  }
  auto out_channel = [&] {
    plan.axis = ShardAxis::kOutputChannel;
    plan.shards = channel_slices(spec.out_c, simd, clusters_);
  };
  auto alternative = [&] {
    if (fc) {
      plan.axis = ShardAxis::kFanIn;
      plan.shards = fanin_segments(spec.in_c, simd, clusters_);
    } else {
      plan.axis = ShardAxis::kIfmapStripe;
      plan.shards = row_stripes(spec.out_h(), clusters_);
    }
  };
  switch (strategy_) {
    case PartitionStrategy::kOutputChannel:
      out_channel();
      break;
    case PartitionStrategy::kIfmapStripe:
      alternative();
      break;
    case PartitionStrategy::kHybrid: {
      const double oc = estimate_output_channel(spec);
      const double alt =
          fc ? estimate_fanin(spec) : estimate_ifmap_stripe(spec);
      // Prefer the historical axis unless the alternative is clearly ahead:
      // output-channel tiles conserve activity exactly and need no halo or
      // reduction bookkeeping, so a marginal estimate should not flip them.
      if (alt < 0.95 * oc) {
        alternative();
        plan.est_cycles = alt;
        plan.est_alt_cycles = oc;
      } else {
        out_channel();
        plan.est_cycles = oc;
        plan.est_alt_cycles = alt;
      }
      break;
    }
  }
  // A single-shard fan-in plan would pay reduction bookkeeping for nothing;
  // collapse it (and any other degenerate split) to one output-channel shard.
  if (plan.shards.size() <= 1) {
    plan.axis = ShardAxis::kOutputChannel;
    plan.shards = {{0, spec.out_c}};
  }
  return plan;
}

ShardPlan Partitioner::plan_network(const snn::Network& net) const {
  ShardPlan plan;
  plan.strategy = strategy_;
  plan.clusters = clusters_;
  plan.layers.reserve(net.num_layers());
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    plan.layers.push_back(plan_layer(net.layer(l)));
  }
  return plan;
}

}  // namespace spikestream::kernels
