// A complete SpikeStream convolution layer running *inside* the cycle-level
// cluster model: SPMD program on N worker cores, workload stealing over
// receptive fields through an `amoadd` ticket (Section III-B), per-position
// SpVAs on the indirect SSR with FREP (Section III-E), accumulating output
// currents (FP64, one output channel per pass).
//
// This is the strongest cross-validation artifact in the repo: the same
// compressed ifmap drives both this program and the layer-level cost model,
// and tests require the cycle counts to agree.
#pragma once

#include <vector>

#include "arch/cluster.hpp"
#include "compress/csr_ifmap.hpp"
#include "snn/network.hpp"
#include "snn/tensor.hpp"

namespace spikestream::kernels {

struct IssConvResult {
  snn::Tensor currents;       ///< out_h x out_w x 1 accumulated currents
  std::uint64_t cycles = 0;
  arch::PerfCounters perf;    ///< aggregated worker counters
  std::uint64_t rf_count = 0; ///< receptive fields processed (ticket check)
};

/// Run one output channel of a k x k spiking conv on `n_cores` workers.
/// `weights` is indexed (kh, kw, ci) with out_c == 1; all data lives in TCDM.
IssConvResult iss_conv_layer(arch::Cluster& cl,
                             const compress::CsrIfmap& ifmap,
                             const snn::LayerWeights& weights, int n_cores);

/// The same layer with the *baseline* scalar SpVA inner loop (Listing 1b):
/// lhu / slli / add / fld / addi / addi / fadd / bne per spike. Dividing the
/// two cycle counts reproduces the paper's headline speedup entirely inside
/// the cycle-level simulator.
IssConvResult iss_conv_layer_baseline(arch::Cluster& cl,
                                      const compress::CsrIfmap& ifmap,
                                      const snn::LayerWeights& weights,
                                      int n_cores);

}  // namespace spikestream::kernels
