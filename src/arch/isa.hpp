// Instruction set of the modeled Snitch-like RV32G worker core, reduced to
// what the SpikeStream kernels need: the RV32IMA subset used for control and
// address generation, double-precision FP compute, and the custom extensions
// (stream semantic registers, FREP hardware loop, DMA control, barrier).
//
// This is not a full RISC-V decoder: instructions are held pre-decoded in a
// `Program`, which is what a cycle-level performance model needs. Encodings
// and CSR numbers are irrelevant to timing and are deliberately not modeled.
#pragma once

#include <cstdint>
#include <string>

namespace spikestream::arch {

/// Pre-decoded opcodes. Names follow RISC-V mnemonics where one exists.
enum class Op : std::uint8_t {
  kNop,
  // --- integer ALU ---
  kAdd, kSub, kAnd, kOr, kXor, kSll, kSrl, kMul, kDivu, kRemu,
  kAddi, kSlli, kSrli, kAndi, kOri, kLi,
  // --- memory (TCDM or global, by address) ---
  kLw, kLh, kLhu, kLbu, kSw, kSh, kSb,
  kAmoAdd,  // atomic fetch-and-add on a word, returns old value in rd
  // --- control flow ---
  kBne, kBeq, kBlt, kBge, kJ, kHalt,
  // --- CSRs / misc ---
  kCsrCoreId, kCsrNumCores, kCsrCycle,
  kBarrier,    // cluster-wide hardware barrier
  kFpuFence,   // stall integer pipe until the FPU sequencer drains
  // --- floating point (held in 64-bit registers) ---
  kFld, kFsd,          // FP load/store issued by the integer LSU
  kFadd, kFsub, kFmul, kFmadd,  // executed by the decoupled FPU
  kFmvFX,              // int -> fp move (bit pattern of rs1 as double via cvt)
  kFmvXF,              // fp -> int move; synchronizes the two pipelines
  kFcvtDW,             // int -> double convert
  // --- FREP hardware loop ---
  // rd = number of following FP instructions in the loop body,
  // rs1 = register holding (repetitions - 1). Body is pushed to the FPU
  // sequencer once and expanded there, freeing the integer pipe.
  kFrep,
  // --- stream semantic registers ---
  // rd selects the SSR (0..2). Configuration writes are single-cycle integer
  // ops landing in the SSR's shadow config; the stream starts at kSsrCommit.
  kSsrCfgBound,   // imm = dim (0..3), rs1 = trip count for that dim
  kSsrCfgStride,  // imm = dim, rs1 = byte stride for that dim
  kSsrCfgBase,    // rs1 = base byte address
  kSsrCfgIdx,     // rs1 = index array base address, imm = log2(index bytes)
  kSsrCfgLen,     // rs1 = number of elements (1D / indirect streams)
  kSsrCommit,     // imm = mode (0 affine read, 1 indirect read, 2 affine write)
  kSsrEnable,     // map f0..f2 reads/writes to SSR streams
  kSsrDisable,
  // --- DMA (issued from the DMA core; worker use is legal but unusual) ---
  kDmaSrc,    // rs1 = source byte address
  kDmaDst,    // rs1 = destination byte address
  kDmaStr,    // rs1 = src stride, rs2 = dst stride (2D transfers)
  kDmaReps,   // rs1 = number of rows (2D transfers; 1 = flat copy)
  kDmaStart,  // rs1 = bytes per row; enqueues the transfer, returns id in rd
  kDmaWait,   // block until all enqueued transfers completed
};

/// SSR stream modes (imm of kSsrCommit).
enum class SsrMode : std::uint8_t { kAffineRead = 0, kIndirectRead = 1, kAffineWrite = 2 };

/// One pre-decoded instruction. Fields unused by an opcode are zero.
struct Instr {
  Op op = Op::kNop;
  std::int16_t rd = 0;
  std::int16_t rs1 = 0;
  std::int16_t rs2 = 0;
  std::int64_t imm = 0;
};

/// True for instructions executed by the decoupled FPU sequencer.
constexpr bool is_fpu_op(Op op) {
  switch (op) {
    case Op::kFadd:
    case Op::kFsub:
    case Op::kFmul:
    case Op::kFmadd:
      return true;
    default:
      return false;
  }
}

/// Human-readable rendering for traces and test failure messages.
std::string disasm(const Instr& i);

// Integer register aliases (x0 is hardwired zero).
inline constexpr int kZero = 0;

// FP register indices f0..f2 are SSR-mapped when SSR is enabled.
inline constexpr int kSsr0 = 0;
inline constexpr int kSsr1 = 1;
inline constexpr int kSsr2 = 2;

}  // namespace spikestream::arch
