// Top-level cluster model: 8 Snitch worker cores + 1 DMA core sharing a
// 32-bank TCDM, an 8 KiB shared instruction cache and one DMA engine —
// the system of Section II-B. Runs an SPMD program (cores branch on their
// core id CSR) until every participating core is done.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_set>
#include <vector>

#include "arch/core.hpp"
#include "arch/dma.hpp"
#include "arch/mem.hpp"
#include "arch/perf.hpp"
#include "arch/program.hpp"

namespace spikestream::arch {

struct ClusterConfig {
  int num_workers = 8;
  bool has_dma_core = true;  ///< the extra core that programs the DMA engine
  MemConfig mem;
  CoreConfig core;
  int icache_line_instrs = 8;
  int icache_miss_penalty = 10;
  std::uint64_t max_cycles = 20'000'000;  ///< watchdog against deadlocks
};

class Cluster {
 public:
  explicit Cluster(const ClusterConfig& cfg = {});

  /// Total cores including the DMA core.
  int num_cores() const { return static_cast<int>(cores_.size()); }
  SnitchCore& core(int i) { return cores_[static_cast<std::size_t>(i)]; }
  Memory& mem() { return mem_; }
  DmaEngine& dma() { return dma_; }
  const ClusterConfig& config() const { return cfg_; }

  /// Load the same program into all cores (SPMD). Resets all state.
  void load_program(const Program& p);

  /// Load a program into a single core; others stay halted. Resets state.
  void load_program_on(int core_id, const Program& p);

  /// Simple linear TCDM allocator for test/kernel setup (8-byte aligned).
  Addr tcdm_alloc(std::uint32_t bytes);
  Addr global_alloc(std::uint32_t bytes);
  void reset_allocators();

  /// Run to completion; returns the cycle count. Throws on watchdog expiry.
  std::uint64_t run();

  std::uint64_t cycles() const { return cycle_; }

  /// Aggregate worker-core counters (excludes the DMA core).
  PerfCounters aggregate_worker_perf() const;

 private:
  bool barrier_arrive(int core_id, bool polling);
  int icache_penalty(std::size_t pc);
  bool all_done() const;

  ClusterConfig cfg_;
  Memory mem_;
  DmaEngine dma_;
  std::vector<SnitchCore> cores_;
  std::vector<const Program*> bound_;  ///< which program each core runs
  Program prog_;  ///< owned storage for load_program
  std::deque<Program> per_core_progs_;  ///< deque: stable element addresses

  std::uint64_t cycle_ = 0;
  int step_rotation_ = 0;  ///< rotates core order for fair TCDM arbitration

  // barrier state
  std::uint64_t barrier_gen_ = 0;
  std::vector<std::uint64_t> core_barrier_gen_;
  int barrier_arrived_ = 0;

  // shared I$: set of line indices already resident
  std::unordered_set<std::size_t> icache_lines_;

  Addr tcdm_brk_;
  Addr global_brk_;
};

}  // namespace spikestream::arch
