// Program container and a tiny structured assembler with labels, used to
// express the paper's kernels (Listings 1b / 1c) as ISS programs.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/isa.hpp"

namespace spikestream::arch {

/// Immutable sequence of pre-decoded instructions.
struct Program {
  std::vector<Instr> code;
  std::size_t size() const { return code.size(); }
};

/// Builder with forward-referencing labels. Branch targets are instruction
/// indices (the ISS "pc" counts instructions, not bytes).
class Asm {
 public:
  // -- labels -------------------------------------------------------------
  void label(const std::string& name);

  // -- integer ALU ----------------------------------------------------------
  void add(int rd, int rs1, int rs2) { emit({Op::kAdd, n16(rd), n16(rs1), n16(rs2), 0}); }
  void sub(int rd, int rs1, int rs2) { emit({Op::kSub, n16(rd), n16(rs1), n16(rs2), 0}); }
  void and_(int rd, int rs1, int rs2) { emit({Op::kAnd, n16(rd), n16(rs1), n16(rs2), 0}); }
  void or_(int rd, int rs1, int rs2) { emit({Op::kOr, n16(rd), n16(rs1), n16(rs2), 0}); }
  void xor_(int rd, int rs1, int rs2) { emit({Op::kXor, n16(rd), n16(rs1), n16(rs2), 0}); }
  void sll(int rd, int rs1, int rs2) { emit({Op::kSll, n16(rd), n16(rs1), n16(rs2), 0}); }
  void srl(int rd, int rs1, int rs2) { emit({Op::kSrl, n16(rd), n16(rs1), n16(rs2), 0}); }
  void mul(int rd, int rs1, int rs2) { emit({Op::kMul, n16(rd), n16(rs1), n16(rs2), 0}); }
  void divu(int rd, int rs1, int rs2) { emit({Op::kDivu, n16(rd), n16(rs1), n16(rs2), 0}); }
  void remu(int rd, int rs1, int rs2) { emit({Op::kRemu, n16(rd), n16(rs1), n16(rs2), 0}); }
  void addi(int rd, int rs1, std::int64_t imm) { emit({Op::kAddi, n16(rd), n16(rs1), 0, imm}); }
  void slli(int rd, int rs1, std::int64_t sh) { emit({Op::kSlli, n16(rd), n16(rs1), 0, sh}); }
  void srli(int rd, int rs1, std::int64_t sh) { emit({Op::kSrli, n16(rd), n16(rs1), 0, sh}); }
  void andi(int rd, int rs1, std::int64_t imm) { emit({Op::kAndi, n16(rd), n16(rs1), 0, imm}); }
  void ori(int rd, int rs1, std::int64_t imm) { emit({Op::kOri, n16(rd), n16(rs1), 0, imm}); }
  void li(int rd, std::int64_t imm) { emit({Op::kLi, n16(rd), 0, 0, imm}); }
  void mv(int rd, int rs1) { addi(rd, rs1, 0); }
  void nop() { emit({Op::kNop, 0, 0, 0, 0}); }

  // -- memory ---------------------------------------------------------------
  void lw(int rd, int rs1, std::int64_t off) { emit({Op::kLw, n16(rd), n16(rs1), 0, off}); }
  void lh(int rd, int rs1, std::int64_t off) { emit({Op::kLh, n16(rd), n16(rs1), 0, off}); }
  void lhu(int rd, int rs1, std::int64_t off) { emit({Op::kLhu, n16(rd), n16(rs1), 0, off}); }
  void lbu(int rd, int rs1, std::int64_t off) { emit({Op::kLbu, n16(rd), n16(rs1), 0, off}); }
  void sw(int rs2, int rs1, std::int64_t off) { emit({Op::kSw, 0, n16(rs1), n16(rs2), off}); }
  void sh(int rs2, int rs1, std::int64_t off) { emit({Op::kSh, 0, n16(rs1), n16(rs2), off}); }
  void sb(int rs2, int rs1, std::int64_t off) { emit({Op::kSb, 0, n16(rs1), n16(rs2), off}); }
  void amoadd(int rd, int rs1, int rs2) { emit({Op::kAmoAdd, n16(rd), n16(rs1), n16(rs2), 0}); }

  // -- control flow -----------------------------------------------------------
  void bne(int rs1, int rs2, const std::string& target) { branch(Op::kBne, rs1, rs2, target); }
  void beq(int rs1, int rs2, const std::string& target) { branch(Op::kBeq, rs1, rs2, target); }
  void blt(int rs1, int rs2, const std::string& target) { branch(Op::kBlt, rs1, rs2, target); }
  void bge(int rs1, int rs2, const std::string& target) { branch(Op::kBge, rs1, rs2, target); }
  void j(const std::string& target) { branch(Op::kJ, 0, 0, target); }
  void halt() { emit({Op::kHalt, 0, 0, 0, 0}); }

  // -- CSR / sync --------------------------------------------------------------
  void csr_core_id(int rd) { emit({Op::kCsrCoreId, n16(rd), 0, 0, 0}); }
  void csr_num_cores(int rd) { emit({Op::kCsrNumCores, n16(rd), 0, 0, 0}); }
  void csr_cycle(int rd) { emit({Op::kCsrCycle, n16(rd), 0, 0, 0}); }
  void barrier() { emit({Op::kBarrier, 0, 0, 0, 0}); }
  void fpu_fence() { emit({Op::kFpuFence, 0, 0, 0, 0}); }

  // -- floating point -----------------------------------------------------------
  void fld(int fd, int rs1, std::int64_t off) { emit({Op::kFld, n16(fd), n16(rs1), 0, off}); }
  void fsd(int fs2, int rs1, std::int64_t off) { emit({Op::kFsd, 0, n16(rs1), n16(fs2), off}); }
  void fadd(int fd, int fs1, int fs2) { emit({Op::kFadd, n16(fd), n16(fs1), n16(fs2), 0}); }
  void fsub(int fd, int fs1, int fs2) { emit({Op::kFsub, n16(fd), n16(fs1), n16(fs2), 0}); }
  void fmul(int fd, int fs1, int fs2) { emit({Op::kFmul, n16(fd), n16(fs1), n16(fs2), 0}); }
  /// fd += fs1 * fs2 (fused; imm carries the accumulator = fd convention).
  void fmadd(int fd, int fs1, int fs2) { emit({Op::kFmadd, n16(fd), n16(fs1), n16(fs2), 0}); }
  void fmv_fx(int fd, int rs1) { emit({Op::kFmvFX, n16(fd), n16(rs1), 0, 0}); }
  void fmv_xf(int rd, int fs1) { emit({Op::kFmvXF, n16(rd), n16(fs1), 0, 0}); }
  void fcvt_d_w(int fd, int rs1) { emit({Op::kFcvtDW, n16(fd), n16(rs1), 0, 0}); }

  /// Hardware loop: repeat the following `n_body` FP instructions
  /// (reg `rs_reps` holds repetitions - 1).
  void frep(int rs_reps, int n_body) { emit({Op::kFrep, n16(n_body), n16(rs_reps), 0, 0}); }

  // -- SSR configuration ----------------------------------------------------------
  void ssr_bound(int ssr, int dim, int rs_count) { emit({Op::kSsrCfgBound, n16(ssr), n16(rs_count), 0, dim}); }
  void ssr_stride(int ssr, int dim, int rs_stride) { emit({Op::kSsrCfgStride, n16(ssr), n16(rs_stride), 0, dim}); }
  void ssr_base(int ssr, int rs_addr) { emit({Op::kSsrCfgBase, n16(ssr), n16(rs_addr), 0, 0}); }
  void ssr_idx(int ssr, int rs_addr, int log2_idx_bytes) { emit({Op::kSsrCfgIdx, n16(ssr), n16(rs_addr), 0, log2_idx_bytes}); }
  void ssr_len(int ssr, int rs_len) { emit({Op::kSsrCfgLen, n16(ssr), n16(rs_len), 0, 0}); }
  void ssr_commit(int ssr, SsrMode mode) { emit({Op::kSsrCommit, n16(ssr), 0, 0, static_cast<std::int64_t>(mode)}); }
  void ssr_enable() { emit({Op::kSsrEnable, 0, 0, 0, 0}); }
  void ssr_disable() { emit({Op::kSsrDisable, 0, 0, 0, 0}); }

  // -- DMA ---------------------------------------------------------------------------
  void dma_src(int rs1) { emit({Op::kDmaSrc, 0, n16(rs1), 0, 0}); }
  void dma_dst(int rs1) { emit({Op::kDmaDst, 0, n16(rs1), 0, 0}); }
  void dma_str(int rs_src, int rs_dst) { emit({Op::kDmaStr, 0, n16(rs_src), n16(rs_dst), 0}); }
  void dma_reps(int rs1) { emit({Op::kDmaReps, 0, n16(rs1), 0, 0}); }
  void dma_start(int rd, int rs_bytes) { emit({Op::kDmaStart, n16(rd), n16(rs_bytes), 0, 0}); }
  void dma_wait() { emit({Op::kDmaWait, 0, 0, 0, 0}); }

  /// Resolve all label references; returns the finished program.
  Program finish();

 private:
  static std::int16_t n16(int v) { return static_cast<std::int16_t>(v); }
  void emit(Instr i) { code_.push_back(i); }
  void branch(Op op, int rs1, int rs2, const std::string& target);

  struct Fixup {
    std::size_t instr_index;
    std::string label;
  };

  std::vector<Instr> code_;
  std::unordered_map<std::string, std::size_t> labels_;
  std::vector<Fixup> fixups_;
};

}  // namespace spikestream::arch
