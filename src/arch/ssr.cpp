#include "arch/ssr.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace spikestream::arch {

bool Ssr::commit() {
  SPK_CHECK(shadow_.mode != SsrMode::kIndirectRead || indirect_capable_,
            "this SSR is not indirect-capable");
  if (!active_) {
    start(shadow_);
    return true;
  }
  if (pending_valid_) return false;
  pending_ = shadow_;
  pending_valid_ = true;
  return true;
}

void Ssr::start(const SsrConfig& c) {
  cfg_ = c;
  active_ = true;
  fetched_ = popped_ = pushed_ = drained_ = 0;
  for (auto& i : idx_counters_) i = 0;
  idx_word_slot_ = -1;
  if (cfg_.mode == SsrMode::kIndirectRead) {
    total_ = cfg_.length;
  } else if (cfg_.length > 0) {
    // 1D convenience: an explicit length overrides dim-0's bound.
    total_ = cfg_.length;
    cfg_.bounds[0] = cfg_.length;
    cfg_.bounds[1] = cfg_.bounds[2] = cfg_.bounds[3] = 1;
  } else {
    total_ = 1;
    for (std::uint32_t b : cfg_.bounds) total_ *= std::max(b, 1u);
  }
  if (total_ == 0) {
    active_ = false;
    maybe_finish();
  }
}

Addr Ssr::affine_addr() const {
  std::int64_t off = 0;
  for (int d = 0; d < 4; ++d) {
    off += static_cast<std::int64_t>(idx_counters_[d]) * cfg_.strides[d];
  }
  return cfg_.base + static_cast<Addr>(off);
}

bool Ssr::advance_affine() {
  for (int d = 0; d < 4; ++d) {
    if (++idx_counters_[d] < std::max(cfg_.bounds[d], 1u)) return true;
    idx_counters_[d] = 0;
  }
  return false;  // stream exhausted
}

void Ssr::maybe_finish() {
  if (active_) {
    const bool read_done = cfg_.mode != SsrMode::kAffineWrite &&
                           popped_ >= total_ && fifo_.empty();
    const bool write_done =
        cfg_.mode == SsrMode::kAffineWrite && drained_ >= total_;
    if (read_done || write_done) active_ = false;
  }
  if (!active_ && pending_valid_) {
    pending_valid_ = false;
    start(pending_);
  }
}

void Ssr::step(Memory& mem) {
  if (!active_) return;

  if (cfg_.mode == SsrMode::kAffineWrite) {
    // Drain one queued FP result to TCDM per cycle.
    if (wfifo_.empty()) return;
    const Addr a = affine_addr();
    if (!mem.request(a)) {
      ++conflict_cycles_;
      return;
    }
    mem.store<double>(a, wfifo_.front());
    wfifo_.pop_front();
    ++drained_;
    advance_affine();
    maybe_finish();
    return;
  }

  // Read streams: fetch at most one element per cycle into the FIFO.
  if (fifo_.size() >= kFifoDepth || fetched_ >= total_) return;

  Addr data_addr = 0;
  if (cfg_.mode == SsrMode::kAffineRead) {
    data_addr = affine_addr();
  } else {
    // Indirect: ensure the 64-bit index word covering element `fetched_` is
    // cached; fetching it uses the private index port (its own arbitration).
    const auto per_word = static_cast<std::uint32_t>(8 / cfg_.idx_bytes);
    const std::int64_t slot = fetched_ / per_word;
    if (slot != idx_word_slot_) {
      const Addr ia = cfg_.idx_base + static_cast<Addr>(slot) * 8u;
      if (!mem.request(ia)) {
        ++conflict_cycles_;
        return;
      }
      idx_word_ = mem.load<std::uint64_t>(ia);
      idx_word_slot_ = slot;
      // The index fetch and the dependent data fetch pipeline back-to-back
      // through the unit's two ports, so both can complete this cycle.
    }
    const std::uint32_t lane = fetched_ % per_word;
    const int shift = static_cast<int>(lane) * cfg_.idx_bytes * 8;
    const std::uint64_t mask =
        cfg_.idx_bytes >= 8 ? ~0ull : ((1ull << (cfg_.idx_bytes * 8)) - 1);
    const std::uint64_t idx = (idx_word_ >> shift) & mask;
    // Indices select elements of `strides[0]` bytes. The default (8) is the
    // batched-SIMD weight word of the base ISA; other strides model the
    // paper's proposed *strided indirect* extension (Section VI), which
    // lets an index address a whole weight row without pre-scaling.
    data_addr = cfg_.base + static_cast<Addr>(idx) *
                                static_cast<Addr>(cfg_.strides[0]);
  }

  if (!mem.request(data_addr)) {
    ++conflict_cycles_;
    return;
  }
  fifo_.push_back(mem.load<double>(data_addr));
  ++fetched_;
  if (cfg_.mode == SsrMode::kAffineRead) advance_affine();
}

}  // namespace spikestream::arch
