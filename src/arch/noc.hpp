// Inter-cluster interconnect (NoC) model. The sharded backend used to assume
// a perfect global crossbar: the broadcast ifmap was charged to every
// cluster's DMA engine but the shared fabric between clusters had infinite
// bandwidth, so scaling numbers at high cluster counts were optimistic. This
// header models the fabric as a single shared bisection-bandwidth ceiling
// with a fixed injection latency — the level of detail of the paper's
// Occamy-style multi-cluster discussions, and enough to make 8-cluster
// speedups honest without simulating routers.
//
// Traffic accounting (who pays what) lives in the sharded backend: a layer's
// `noc_bytes` is every byte a cluster must receive that it does not already
// hold locally — broadcast ifmap replicas beyond the first copy, halo rows of
// spatial stripes, gathered ofmap slices, and FC partial-sum reductions. The
// bytes are always recorded in KernelStats (and priced by the energy model);
// the *timing* ceiling is opt-in via `model_contention` so exact-mode
// backends keep their historical cycle counts.
#pragma once

namespace spikestream::arch {

struct NocParams {
  /// false = perfect crossbar (legacy timing): traffic is still counted and
  /// priced, but never gates a layer's wall-clock.
  bool model_contention = false;
  /// Shared bisection bandwidth across all clusters, bytes per cycle. The
  /// per-cluster DMA port is 64 B/cy; a shared fabric that matches a single
  /// port (instead of scaling with the cluster count) is the contended case.
  double shared_bytes_per_cycle = 64.0;
  /// Cycles to the first beat of an inter-cluster transfer (injection +
  /// routing). Charged once per layer, not per message: transfers of one
  /// layer are pipelined back to back.
  double hop_latency = 12.0;
};

/// Cycles the shared fabric needs to move `bytes` of inter-cluster traffic.
inline double noc_transfer_cycles(const NocParams& p, double bytes) {
  if (bytes <= 0.0) return 0.0;
  return p.hop_latency + bytes / p.shared_bytes_per_cycle;
}

}  // namespace spikestream::arch
