// Inter-cluster interconnect (NoC) model. Two levels of fidelity:
//
//  * kLegacyCeiling — the historical model: a single shared bisection-
//    bandwidth ceiling with one injection latency per layer. Replicated
//    broadcast payloads are charged once per receiver on that one ceiling
//    (`noc_transfer_cycles`), which overprices multicast and cannot say
//    *which* wire saturates. Kept bit-exact as the default: every pre-link-
//    model cycle count reproduces unchanged.
//  * kCrossbar / kRingQuadrant — a link-level topology. Every cluster owns an
//    injection and an ejection link into its local switch; under
//    kRingQuadrant the clusters are grouped into quadrants (up to
//    `quadrant_size` clusters each) whose switches sit on a bidirectional
//    ring. A transfer charges its payload to every link it traverses exactly
//    once — in particular a multicast charges each link once per *link*, not
//    once per receiver, so an 8-way ifmap broadcast costs one injection, at
//    most one traversal of each ring link, and one ejection per receiver.
//    Contention cycles are the busiest link's serialization plus the longest
//    route's hop latency.
//
// Traffic accounting (who pays what) lives in the sharded backend: a layer's
// `noc_bytes` is every byte that crosses the fabric — broadcast ifmap
// replicas, halo rows of spatial stripes, gathered ofmap slices, FC
// partial-sum reductions, and pipeline stage handoffs. The bytes are always
// recorded in KernelStats (and priced by the energy model); the *timing*
// gate is opt-in via `model_contention` so exact-mode backends keep their
// historical cycle counts.
#pragma once

#include <algorithm>
#include <array>

namespace spikestream::arch {

enum class NocTopology {
  kLegacyCeiling,  ///< single shared ceiling (historical timing, default)
  kCrossbar,       ///< per-cluster injection/ejection links, ideal core
  kRingQuadrant,   ///< cluster quadrants on a bidirectional switch ring
};

inline const char* noc_topology_name(NocTopology t) {
  switch (t) {
    case NocTopology::kLegacyCeiling: return "legacy-ceiling";
    case NocTopology::kCrossbar: return "crossbar";
    case NocTopology::kRingQuadrant: return "ring-quadrant";
  }
  return "?";
}

struct NocParams {
  /// false = perfect fabric (legacy timing): traffic is still counted and
  /// priced, but never gates a layer's wall-clock.
  bool model_contention = false;
  /// Interconnect shape. The default reproduces the historical shared-
  /// ceiling expression bit-exactly; the link topologies price traffic
  /// per-link (see header comment).
  NocTopology topology = NocTopology::kLegacyCeiling;
  /// Shared bisection bandwidth across all clusters, bytes per cycle
  /// (kLegacyCeiling only). The per-cluster DMA port is 64 B/cy; a shared
  /// fabric that matches a single port is the contended case.
  double shared_bytes_per_cycle = 64.0;
  /// Cycles to the first beat of an inter-cluster transfer. Legacy charges
  /// it once per layer; the link topologies charge it once per traversed
  /// switch hop on the layer's longest route (transfers of one layer are
  /// pipelined back to back, so only the head pays it).
  double hop_latency = 12.0;
  /// Bandwidth of one injection/ejection/ring link, bytes per cycle (link
  /// topologies only). Matches one cluster's DMA port width.
  double link_bytes_per_cycle = 64.0;
  /// Clusters per quadrant switch under kRingQuadrant.
  int quadrant_size = 4;
};

/// Cycles the legacy shared fabric needs to move `bytes` of inter-cluster
/// traffic. Unchanged since the NoC was introduced — the kLegacyCeiling
/// bit-exactness contract is this exact expression.
inline double noc_transfer_cycles(const NocParams& p, double bytes) {
  if (bytes <= 0.0) return 0.0;
  return p.hop_latency + bytes / p.shared_bytes_per_cycle;
}

/// Allocation-free per-link byte accumulator for one layer's inter-cluster
/// traffic under the link topologies. Build one, describe the layer's
/// transfers (unicast / multicast), then read total bytes (for
/// KernelStats::noc_bytes / energy) and contention cycles (busiest link +
/// longest route). Multicast charges each traversed link exactly once.
class NocModel {
 public:
  static constexpr int kMaxClusters = 64;

  NocModel(const NocParams& p, int clusters)
      : p_(p),
        n_(std::clamp(clusters, 1, kMaxClusters)),
        quad_(std::max(1, p.quadrant_size)),
        ring_(p.topology == NocTopology::kRingQuadrant
                  ? (n_ + std::max(1, p.quadrant_size) - 1) /
                        std::max(1, p.quadrant_size)
                  : 1) {
    up_.fill(0.0);
    down_.fill(0.0);
    cw_.fill(0.0);
    ccw_.fill(0.0);
    derate_.fill(1.0);
  }

  int clusters() const { return n_; }
  int quadrants() const { return ring_; }

  /// Fault modeling: derate the bandwidth of one cluster's injection and
  /// ejection links by `factor` >= 1 (the link serializes `bytes * factor`
  /// worth of cycles). Ring links are switch fabric and stay at full width.
  /// All-ones derates reproduce the healthy cycles() bit-exactly.
  void set_link_derate(int cluster, double factor) {
    if (cluster < 0 || cluster >= n_) return;
    derate_[idx(cluster)] = std::max(1.0, factor);
  }

  /// Point-to-point transfer src -> dst (no-op when src == dst).
  void unicast(int src, int dst, double bytes) {
    if (bytes <= 0.0 || src == dst) return;
    up_[idx(src)] += bytes;
    down_[idx(dst)] += bytes;
    total_ += 2.0 * bytes;
    int hops = 2;
    if (ring_ > 1) {
      const int qs = quadrant(src), qd = quadrant(dst);
      if (qs != qd) hops += charge_ring_path(qs, qd, bytes);
    }
    max_hops_ = std::max(max_hops_, hops);
  }

  /// One payload from `src` to every cluster of [lo, hi) except `src`.
  /// Injection is charged once, each ring link at most once (minimal-
  /// direction flood), each receiver's ejection once — the link-model
  /// multicast contract the tests pin (crossbar link-byte sum is exactly
  /// the (1 + receivers) * payload lower bound).
  void multicast(int src, int lo, int hi, double bytes) {
    if (bytes <= 0.0) return;
    lo = std::max(lo, 0);
    hi = std::min(hi, n_);
    int receivers = 0;
    int max_cw = 0, max_ccw = 0;
    const int qs = quadrant(src);
    for (int d = lo; d < hi; ++d) {
      if (d == src) continue;
      ++receivers;
      down_[idx(d)] += bytes;
      if (ring_ > 1) {
        const int qd = quadrant(d);
        if (qd != qs) {
          const int dcw = (qd - qs + ring_) % ring_;
          const int dccw = ring_ - dcw;
          if (dcw <= dccw) {
            max_cw = std::max(max_cw, dcw);
          } else {
            max_ccw = std::max(max_ccw, dccw);
          }
        }
      }
    }
    if (receivers == 0) return;
    up_[idx(src)] += bytes;
    total_ += static_cast<double>(receivers + 1) * bytes;
    for (int h = 0; h < max_cw; ++h) {
      cw_[(qs + h) % ring_] += bytes;
      total_ += bytes;
    }
    for (int h = 0; h < max_ccw; ++h) {
      ccw_[(qs - h + ring_ * 2) % ring_] += bytes;
      total_ += bytes;
    }
    max_hops_ = std::max(max_hops_, 2 + std::max(max_cw, max_ccw));
  }

  /// Sum of bytes over all links (what KernelStats::noc_bytes records and
  /// the energy model prices: every link traversal moves the payload once).
  double total_link_bytes() const { return total_; }

  /// Bytes on the busiest single link.
  double max_link_bytes() const {
    double m = 0.0;
    for (int c = 0; c < n_; ++c) m = std::max({m, up_[idx(c)], down_[idx(c)]});
    for (int q = 0; q < ring_; ++q) {
      m = std::max({m, cw_[static_cast<std::size_t>(q)],
                    ccw_[static_cast<std::size_t>(q)]});
    }
    return m;
  }

  /// Switch hops of the longest route any transfer took.
  int max_hops() const { return max_hops_; }

  /// Cycles the fabric needs for this layer's traffic: head latency of the
  /// longest route plus serialization on the busiest link (a derated link
  /// serializes its bytes `factor` times slower). 0 when no bytes moved.
  double cycles() const {
    if (total_ <= 0.0) return 0.0;
    double m = 0.0;
    for (int c = 0; c < n_; ++c) {
      m = std::max(
          {m, up_[idx(c)] * derate_[idx(c)], down_[idx(c)] * derate_[idx(c)]});
    }
    for (int q = 0; q < ring_; ++q) {
      m = std::max({m, cw_[static_cast<std::size_t>(q)],
                    ccw_[static_cast<std::size_t>(q)]});
    }
    return p_.hop_latency * max_hops_ + m / p_.link_bytes_per_cycle;
  }

 private:
  static std::size_t idx(int c) { return static_cast<std::size_t>(c); }
  int quadrant(int c) const { return c / quad_; }

  /// Charge every directed ring link on the minimal path qs -> qd once;
  /// returns the hop count of that path.
  int charge_ring_path(int qs, int qd, double bytes) {
    const int dcw = (qd - qs + ring_) % ring_;
    const int dccw = ring_ - dcw;
    if (dcw <= dccw) {
      for (int h = 0; h < dcw; ++h) {
        cw_[(qs + h) % ring_] += bytes;
        total_ += bytes;
      }
      return dcw;
    }
    for (int h = 0; h < dccw; ++h) {
      ccw_[(qs - h + ring_ * 2) % ring_] += bytes;
      total_ += bytes;
    }
    return dccw;
  }

  NocParams p_;
  int n_;
  int quad_;
  int ring_;  ///< quadrant switches on the ring (1 = no ring links)
  double total_ = 0.0;
  int max_hops_ = 0;
  std::array<double, kMaxClusters> up_;    ///< cluster -> local switch
  std::array<double, kMaxClusters> down_;  ///< local switch -> cluster
  std::array<double, kMaxClusters> cw_;    ///< ring: switch q -> q+1
  std::array<double, kMaxClusters> ccw_;   ///< ring: switch q -> q-1
  std::array<double, kMaxClusters> derate_;  ///< per-cluster link bw derate
};

}  // namespace spikestream::arch
