#include "arch/cluster.hpp"

#include "common/check.hpp"

namespace spikestream::arch {

Cluster::Cluster(const ClusterConfig& cfg)
    : cfg_(cfg), mem_(cfg.mem), tcdm_brk_(kTcdmBase), global_brk_(kGlobalBase) {
  const int n = cfg_.num_workers + (cfg_.has_dma_core ? 1 : 0);
  cores_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) cores_.emplace_back(i, cfg_.core);
  bound_.assign(static_cast<std::size_t>(n), nullptr);
  core_barrier_gen_.assign(static_cast<std::size_t>(n), 0);
}

void Cluster::load_program(const Program& p) {
  prog_ = p;
  per_core_progs_.clear();
  cycle_ = 0;
  barrier_gen_ = 0;
  barrier_arrived_ = 0;
  icache_lines_.clear();
  std::fill(core_barrier_gen_.begin(), core_barrier_gen_.end(), 0);
  for (auto& c : cores_) {
    c.load_program(&prog_);
  }
  for (auto& b : bound_) b = &prog_;
}

void Cluster::load_program_on(int core_id, const Program& p) {
  SPK_CHECK(core_id >= 0 && core_id < num_cores(), "bad core id " << core_id);
  per_core_progs_.push_back(p);
  cycle_ = 0;
  icache_lines_.clear();
  for (int i = 0; i < num_cores(); ++i) {
    if (i == core_id) {
      bound_[static_cast<std::size_t>(i)] = &per_core_progs_.back();
      cores_[static_cast<std::size_t>(i)].load_program(&per_core_progs_.back());
    } else if (bound_[static_cast<std::size_t>(i)] == nullptr) {
      cores_[static_cast<std::size_t>(i)].load_program(nullptr);
    }
  }
}

Addr Cluster::tcdm_alloc(std::uint32_t bytes) {
  const Addr a = (tcdm_brk_ + 7u) & ~7u;
  SPK_CHECK(a + bytes <= kTcdmBase + cfg_.mem.tcdm_bytes,
            "TCDM allocator out of space (" << bytes << " requested)");
  tcdm_brk_ = a + bytes;
  return a;
}

Addr Cluster::global_alloc(std::uint32_t bytes) {
  const Addr a = (global_brk_ + 63u) & ~63u;
  SPK_CHECK(a + bytes <= kGlobalBase + cfg_.mem.global_bytes,
            "global allocator out of space");
  global_brk_ = a + bytes;
  return a;
}

void Cluster::reset_allocators() {
  tcdm_brk_ = kTcdmBase;
  global_brk_ = kGlobalBase;
}

bool Cluster::barrier_arrive(int core_id, bool polling) {
  auto& my_gen = core_barrier_gen_[static_cast<std::size_t>(core_id)];
  if (polling) return my_gen <= barrier_gen_;

  SPK_CHECK(my_gen == barrier_gen_, "double barrier arrival by core " << core_id);
  my_gen = barrier_gen_ + 1;
  int participants = 0;
  for (int i = 0; i < num_cores(); ++i) {
    if (bound_[static_cast<std::size_t>(i)] != nullptr) ++participants;
  }
  if (++barrier_arrived_ == participants) {
    ++barrier_gen_;
    barrier_arrived_ = 0;
    return true;
  }
  return false;
}

int Cluster::icache_penalty(std::size_t pc) {
  const std::size_t line = pc / static_cast<std::size_t>(cfg_.icache_line_instrs);
  if (icache_lines_.contains(line)) return 0;
  icache_lines_.insert(line);
  return cfg_.icache_miss_penalty;
}

bool Cluster::all_done() const {
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (bound_[i] != nullptr && !cores_[i].done()) return false;
  }
  return dma_.idle();
}

std::uint64_t Cluster::run() {
  ClusterServices svc;
  svc.barrier_arrive = [this](int id, bool polling) {
    return barrier_arrive(id, polling);
  };
  svc.icache_penalty = [this](std::size_t pc) { return icache_penalty(pc); };
  svc.dma = &dma_;
  svc.num_cores = num_cores();

  const std::uint64_t start = cycle_;
  while (!all_done()) {
    SPK_CHECK(cycle_ - start < cfg_.max_cycles,
              "cluster watchdog: no completion after " << cfg_.max_cycles
                                                       << " cycles");
    mem_.begin_cycle();
    const int n = num_cores();
    // Rotate stepping order so first-come TCDM arbitration is fair over time.
    for (int k = 0; k < n; ++k) {
      const int i = (k + step_rotation_) % n;
      if (bound_[static_cast<std::size_t>(i)] != nullptr) {
        cores_[static_cast<std::size_t>(i)].step(cycle_, mem_, svc);
      }
    }
    dma_.step(mem_);  // after cores: workers keep TCDM priority
    ++cycle_;
    step_rotation_ = (step_rotation_ + 1) % std::max(n, 1);
  }
  // Stamp per-core cycle counts (time to the whole kernel's completion).
  for (std::size_t i = 0; i < cores_.size(); ++i) {
    if (bound_[i] != nullptr) cores_[i].perf().cycles = cycle_ - start;
  }
  return cycle_ - start;
}

PerfCounters Cluster::aggregate_worker_perf() const {
  PerfCounters agg;
  for (int i = 0; i < cfg_.num_workers && i < num_cores(); ++i) {
    agg.accumulate(cores_[static_cast<std::size_t>(i)].perf());
  }
  return agg;
}

}  // namespace spikestream::arch
