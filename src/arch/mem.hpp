// Cluster memory system: a 32-bank tightly-coupled data memory (TCDM /
// scratchpad) with single-cycle access and per-bank conflict arbitration,
// plus a flat global memory reachable through the DMA engine (or directly by
// cores, at a latency penalty, which SpikeStream kernels never do on purpose).
//
// Arbitration model: requesters call `request()` during their step; the first
// requester to touch a bank in a cycle wins, later ones are denied and must
// retry next cycle. The cluster rotates core stepping order every cycle, so
// denial is fair round-robin over time. `begin_cycle()` resets bank claims.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

#include "arch/dram/dram.hpp"
#include "common/check.hpp"

namespace spikestream::arch {

using Addr = std::uint32_t;

/// Address map. Matches the flavour of the Snitch cluster memory map:
/// TCDM low, global memory high.
inline constexpr Addr kTcdmBase = 0x0010'0000;
inline constexpr Addr kGlobalBase = 0x8000'0000;

struct MemConfig {
  std::uint32_t tcdm_bytes = 128 * 1024;  ///< shared scratchpad size
  int tcdm_banks = 32;                    ///< word-interleaved banks
  int bank_word_bytes = 8;                ///< 64-bit banks
  std::uint32_t global_bytes = 16u * 1024 * 1024;
  // Flat global-memory timing, sourced from the one set of DRAM constants
  // (arch/dram/dram.hpp) the planner's legacy cost queries also use — the
  // cycle-level DMA engine and the analytical model cannot drift apart.
  int global_latency = kDramRequestLatency;  ///< cycles to first DMA beat
  int global_bytes_per_cycle = kDramBytesPerCycle;  ///< 512-bit port to L2/HBM
};

/// Per-component memory statistics.
struct MemStats {
  std::uint64_t tcdm_accesses = 0;
  std::uint64_t tcdm_conflicts = 0;  ///< denied requests (retried next cycle)
};

/// The cluster's memory, including the banked-TCDM conflict model.
class Memory {
 public:
  explicit Memory(const MemConfig& cfg = {})
      : cfg_(cfg),
        tcdm_(cfg.tcdm_bytes, 0),
        global_(cfg.global_bytes, 0) {
    SPK_CHECK((cfg.tcdm_banks & (cfg.tcdm_banks - 1)) == 0,
              "bank count must be a power of two");
  }

  const MemConfig& config() const { return cfg_; }
  const MemStats& stats() const { return stats_; }

  bool is_tcdm(Addr a) const {
    return a >= kTcdmBase && a < kTcdmBase + cfg_.tcdm_bytes;
  }
  bool is_global(Addr a) const {
    return a >= kGlobalBase && (a - kGlobalBase) < cfg_.global_bytes;
  }

  int bank_of(Addr a) const {
    return static_cast<int>((a - kTcdmBase) /
                            static_cast<Addr>(cfg_.bank_word_bytes)) &
           (cfg_.tcdm_banks - 1);
  }

  /// Start a new arbitration window. Called once per cluster cycle.
  /// Claims are epoch-stamped so this is O(1) on the per-cycle hot path.
  void begin_cycle() {
    if (claimed_.size() != static_cast<std::size_t>(cfg_.tcdm_banks)) {
      claimed_.assign(static_cast<std::size_t>(cfg_.tcdm_banks), 0);
    }
    ++epoch_;
  }

  /// Try to win the bank holding `addr` for this cycle. On success the caller
  /// may complete one load/store of up to 8 bytes this cycle.
  bool request(Addr addr) {
    if (!is_tcdm(addr)) return true;  // global accesses arbitrated by the DMA
    const int b = bank_of(addr);
    ++stats_.tcdm_accesses;
    if (claimed_[static_cast<std::size_t>(b)] == epoch_) {
      ++stats_.tcdm_conflicts;
      return false;
    }
    claimed_[static_cast<std::size_t>(b)] = epoch_;
    return true;
  }

  /// True if the bank for `addr` is still free this cycle (no claim made).
  bool bank_free(Addr addr) const {
    if (!is_tcdm(addr)) return true;
    return claimed_[static_cast<std::size_t>(bank_of(addr))] != epoch_;
  }

  // --- untimed data access (timing handled by the callers above) ----------
  template <typename T>
  T load(Addr a) const {
    T v{};
    std::memcpy(&v, ptr(a, sizeof(T)), sizeof(T));
    return v;
  }

  template <typename T>
  void store(Addr a, T v) {
    std::memcpy(mut_ptr(a, sizeof(T)), &v, sizeof(T));
  }

  /// Raw byte copy (used by the DMA engine data path).
  void copy(Addr dst, Addr src, std::uint32_t bytes) {
    std::memcpy(mut_ptr(dst, bytes), ptr(src, bytes), bytes);
  }

 private:
  const std::uint8_t* ptr(Addr a, std::size_t n) const {
    if (is_tcdm(a)) {
      SPK_CHECK(a - kTcdmBase + n <= cfg_.tcdm_bytes, "TCDM OOB @0x" << std::hex << a);
      return tcdm_.data() + (a - kTcdmBase);
    }
    SPK_CHECK(is_global(a) && (a - kGlobalBase) + n <= cfg_.global_bytes,
              "global OOB @0x" << std::hex << a);
    return global_.data() + (a - kGlobalBase);
  }
  std::uint8_t* mut_ptr(Addr a, std::size_t n) {
    return const_cast<std::uint8_t*>(ptr(a, n));
  }

  MemConfig cfg_;
  MemStats stats_;
  std::vector<std::uint8_t> tcdm_;
  std::vector<std::uint8_t> global_;
  std::vector<std::uint64_t> claimed_;  ///< epoch stamp of the last claim
  std::uint64_t epoch_ = 1;
};

}  // namespace spikestream::arch
