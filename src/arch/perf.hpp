// Per-core performance counters. Definitions follow the Snitch papers:
//  * FPU utilization = FP ops issued / total cycles,
//  * IPC = (integer instructions retired + FP instructions issued) / cycles.
#pragma once

#include <cstdint>

namespace spikestream::arch {

struct PerfCounters {
  std::uint64_t cycles = 0;           ///< cycles from start to this core's halt
  std::uint64_t int_instrs = 0;       ///< integer pipe retirements (incl. fld/fsd)
  std::uint64_t fp_ops = 0;           ///< FPU issues (one SIMD op counts once)
  std::uint64_t fp_loads = 0;         ///< fld/fsd through the LSU
  std::uint64_t ssr_elems = 0;        ///< elements delivered by SSRs
  std::uint64_t tcdm_stall_cycles = 0;///< integer pipe stalled on bank conflict
  std::uint64_t raw_stall_cycles = 0; ///< integer pipe stalled on operand
  std::uint64_t branch_penalty_cycles = 0;
  std::uint64_t fpu_raw_stall_cycles = 0;  ///< FPU waiting on accumulator dep
  std::uint64_t fpu_ssr_stall_cycles = 0;  ///< FPU waiting on stream data
  std::uint64_t frep_expanded = 0;    ///< FP ops injected by the sequencer

  double fpu_utilization() const {
    return cycles ? static_cast<double>(fp_ops) / static_cast<double>(cycles)
                  : 0.0;
  }
  double ipc() const {
    return cycles ? static_cast<double>(int_instrs + fp_ops) /
                        static_cast<double>(cycles)
                  : 0.0;
  }

  void accumulate(const PerfCounters& o) {
    cycles += o.cycles;
    int_instrs += o.int_instrs;
    fp_ops += o.fp_ops;
    fp_loads += o.fp_loads;
    ssr_elems += o.ssr_elems;
    tcdm_stall_cycles += o.tcdm_stall_cycles;
    raw_stall_cycles += o.raw_stall_cycles;
    branch_penalty_cycles += o.branch_penalty_cycles;
    fpu_raw_stall_cycles += o.fpu_raw_stall_cycles;
    fpu_ssr_stall_cycles += o.fpu_ssr_stall_cycles;
    frep_expanded += o.frep_expanded;
  }
};

}  // namespace spikestream::arch
