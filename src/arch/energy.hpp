// Cluster energy model: per-event energies multiplied by activity counts,
// plus static/clock power. Constants are calibrated (see DESIGN.md §2) so the
// modeled cluster reproduces the paper's measured average powers at 1 GHz,
// 0.8 V, GF12LP+ (baseline FP16 0.1319 W, SpikeStream FP16 0.233 W,
// SpikeStream FP8 0.219 W). Both the ISS and the layer-level kernel model
// feed the same `Activity` structure, so energy numbers are comparable.
#pragma once

#include "common/float_formats.hpp"

namespace spikestream::arch {

/// Per-event energies in picojoules and static power in pJ/cycle.
struct EnergyParams {
  double int_instr = 4.0;     ///< integer datapath + regfile, per instruction
  double icache_fetch = 1.5;  ///< per issued instruction
  double tcdm_word = 9.0;     ///< per 64-bit TCDM word moved
  double ssr_elem = 1.5;      ///< SSR address generation + FIFO, per element
  /// FPU energy per SIMD op by format. Narrow formats clock-gate the unused
  /// wide slices (the paper's explanation for FP8's 6.7% power saving).
  double fpu_op_fp64 = 48.0;
  double fpu_op_fp32 = 44.0;
  double fpu_op_fp16 = 40.0;
  double fpu_op_fp8 = 36.0;
  double fmadd_factor = 1.35;  ///< multiply-accumulate vs add-only op
  double dma_byte = 0.35;
  /// DRAM row activation (precharge + activate of one row buffer). Only the
  /// banked DRAM model reports activations; flat-legacy runs count zero, so
  /// their energy is unchanged.
  double dram_row_act = 2.0;
  /// SEC-DED syndrome compute + compare per 64-bit codeword checked (DRAM
  /// beats and SPM words). Only ECC-enabled runs report checked words, so
  /// historical energy numbers are unchanged.
  double ecc_word = 0.08;
  /// Inter-cluster NoC traffic: longer wires + wider crossings than a
  /// cluster-local DMA beat (multi-cluster sharded runs only).
  double noc_byte = 0.6;
  double static_core = 6.5;     ///< pJ/cycle/core (clock tree + leakage)
  double static_cluster = 15.0; ///< pJ/cycle shared (TCDM, interconnect, I$)
  double freq_hz = 1.0e9;

  double fpu_op(common::FpFormat f) const {
    switch (f) {
      case common::FpFormat::FP64: return fpu_op_fp64;
      case common::FpFormat::FP32: return fpu_op_fp32;
      case common::FpFormat::FP16: return fpu_op_fp16;
      case common::FpFormat::FP8: return fpu_op_fp8;
    }
    return fpu_op_fp64;
  }
};

/// Abstract activity counts for one kernel execution on the whole cluster.
struct Activity {
  double cycles = 0;        ///< wall-clock cycles of the kernel
  double active_cores = 8;  ///< cores clocked during the kernel
  double int_instrs = 0;
  double fpu_add_ops = 0;   ///< add-only SIMD ops (SpVA accumulation)
  double fpu_mac_ops = 0;   ///< fmadd SIMD ops (dense encode matmul)
  double tcdm_words = 0;    ///< 64-bit words through the interconnect
  double ssr_elems = 0;
  double dma_bytes = 0;
  /// Weight-fetch bytes skipped by batch-level SPM weight-tile reuse. Not
  /// priced (the saving already shows as lower dma_bytes); carried so energy
  /// reports can state how much DMA traffic the reuse removed.
  double dma_saved_bytes = 0;
  /// Partial-sum spill/fill traffic of the segment-major batched FC
  /// schedule. A subset of dma_bytes (so it is already priced); carried so
  /// reports can judge the weight-stream saving net of its spill cost.
  double dma_spill_bytes = 0;
  double noc_bytes = 0;     ///< inter-cluster traffic (sharded runs)
  /// Row-buffer outcomes of the banked DRAM model (64 B beat granularity;
  /// both 0 under flat legacy). Misses are priced as row activations.
  double dram_row_hits = 0;
  double dram_row_misses = 0;
  /// Spill/fill DMA cycles hidden under concurrent band streams by the
  /// double-buffered segment-major schedule. Not priced (the traffic itself
  /// is already in dma_bytes); carried so reports can show the overlap.
  double dma_hidden_cycles = 0;
  /// Cycles the NoC contention gate added to the wall-clock (subset of
  /// `cycles`, so already priced by the static term); carried so reports can
  /// attribute fabric-bound time.
  double noc_contention_cycles = 0;
  /// Stage-pipeline FIFO backpressure cycles (subset of the stage window's
  /// `cycles`); carried so reports can attribute pipeline-imbalance time.
  double fifo_stall_cycles = 0;
  /// SEC-DED codewords checked (DRAM beats + SPM interconnect words, priced
  /// at EnergyParams::ecc_word) and the expected correction outcomes. All
  /// zero with ECC off — the off-by-default bit-exactness contract.
  double ecc_words = 0;
  double ecc_corrected = 0;      ///< expected single-bit corrections
  double ecc_uncorrectable = 0;  ///< expected detected-uncorrectable events
  /// ECC check/scrub cycles (subset of `cycles`, so already priced by the
  /// static term); carried so reports can attribute protection overhead.
  double ecc_cycles = 0;

  void accumulate(const Activity& o) {
    cycles += o.cycles;
    int_instrs += o.int_instrs;
    fpu_add_ops += o.fpu_add_ops;
    fpu_mac_ops += o.fpu_mac_ops;
    tcdm_words += o.tcdm_words;
    ssr_elems += o.ssr_elems;
    dma_bytes += o.dma_bytes;
    dma_saved_bytes += o.dma_saved_bytes;
    dma_spill_bytes += o.dma_spill_bytes;
    noc_bytes += o.noc_bytes;
    dram_row_hits += o.dram_row_hits;
    dram_row_misses += o.dram_row_misses;
    dma_hidden_cycles += o.dma_hidden_cycles;
    noc_contention_cycles += o.noc_contention_cycles;
    fifo_stall_cycles += o.fifo_stall_cycles;
    ecc_words += o.ecc_words;
    ecc_corrected += o.ecc_corrected;
    ecc_uncorrectable += o.ecc_uncorrectable;
    ecc_cycles += o.ecc_cycles;
  }

  double dram_row_hit_rate() const {
    const double beats = dram_row_hits + dram_row_misses;
    return beats > 0 ? dram_row_hits / beats : 0.0;
  }
};

/// Energy split by component, in picojoules.
struct EnergyBreakdown {
  double int_pj = 0;
  double icache_pj = 0;
  double fpu_pj = 0;
  double tcdm_pj = 0;
  double ssr_pj = 0;
  double dma_pj = 0;
  double noc_pj = 0;
  double static_pj = 0;

  double total_pj() const {
    return int_pj + icache_pj + fpu_pj + tcdm_pj + ssr_pj + dma_pj + noc_pj +
           static_pj;
  }
  double total_mj() const { return total_pj() * 1e-9; }
};

/// Evaluate the model for one kernel run in format `f`.
inline EnergyBreakdown compute_energy(const EnergyParams& p,
                                      const Activity& a,
                                      common::FpFormat f) {
  EnergyBreakdown e;
  e.int_pj = a.int_instrs * p.int_instr;
  e.icache_pj = a.int_instrs * p.icache_fetch;
  e.fpu_pj = a.fpu_add_ops * p.fpu_op(f) +
             a.fpu_mac_ops * p.fpu_op(f) * p.fmadd_factor;
  e.tcdm_pj = a.tcdm_words * p.tcdm_word;
  e.ssr_pj = a.ssr_elems * p.ssr_elem;
  e.dma_pj = a.dma_bytes * p.dma_byte + a.dram_row_misses * p.dram_row_act +
             a.ecc_words * p.ecc_word;
  e.noc_pj = a.noc_bytes * p.noc_byte;
  e.static_pj = a.cycles * (p.static_core * a.active_cores + p.static_cluster);
  return e;
}

/// Average power in watts over the activity window.
inline double average_power_w(const EnergyParams& p, const Activity& a,
                              common::FpFormat f) {
  if (a.cycles <= 0) return 0.0;
  const double seconds = a.cycles / p.freq_hz;
  return compute_energy(p, a, f).total_pj() * 1e-12 / seconds;
}

}  // namespace spikestream::arch
