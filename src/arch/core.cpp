#include "arch/core.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace spikestream::arch {

void SnitchCore::reset() {
  xreg_.fill(0);
  xready_.fill(0);
  freg_.fill(0.0);
  fready_.fill(0);
  pending_fp_writes_.fill(0);
  fpu_q_.clear();
  ssrs_ = {Ssr(true), Ssr(true), Ssr(false)};
  ssr_enabled_ = false;
  pc_ = 0;
  halted_ = (prog_ == nullptr);
  int_next_issue_ = 0;
  fpu_next_issue_ = 0;
  in_barrier_ = false;
  perf_ = {};
  halt_cycle_ = 0;
  dma_stage_ = {};
}

bool SnitchCore::done() const {
  if (!halted_ || !fpu_q_.empty()) return false;
  for (int p : pending_fp_writes_) {
    if (p != 0) return false;
  }
  for (const Ssr& s : ssrs_) {
    if (!s.fully_idle()) return false;
  }
  return true;
}

void SnitchCore::step(std::uint64_t cycle, Memory& mem, ClusterServices& svc) {
  step_fpu(cycle, mem);
  for (Ssr& s : ssrs_) s.step(mem);
  step_int(cycle, mem, svc);
}

bool SnitchCore::int_srcs_ready(const Instr& in, std::uint64_t cycle) {
  std::uint64_t ready = 0;
  switch (in.op) {
    // Two-source integer ops.
    case Op::kAdd: case Op::kSub: case Op::kAnd: case Op::kOr: case Op::kXor:
    case Op::kSll: case Op::kSrl: case Op::kMul: case Op::kDivu:
    case Op::kRemu: case Op::kAmoAdd:
    case Op::kBne: case Op::kBeq: case Op::kBlt: case Op::kBge:
    case Op::kSw: case Op::kSh: case Op::kSb: case Op::kDmaStr:
      ready = std::max(xready_[static_cast<std::size_t>(in.rs1)],
                       xready_[static_cast<std::size_t>(in.rs2)]);
      break;
    // Single-source ops.
    case Op::kAddi: case Op::kSlli: case Op::kSrli: case Op::kAndi:
    case Op::kOri: case Op::kLw: case Op::kLh: case Op::kLhu: case Op::kLbu:
    case Op::kFld: case Op::kFsd: case Op::kFmvFX: case Op::kFcvtDW:
    case Op::kFrep: case Op::kSsrCfgBound: case Op::kSsrCfgStride:
    case Op::kSsrCfgBase: case Op::kSsrCfgIdx: case Op::kSsrCfgLen:
    case Op::kDmaSrc: case Op::kDmaDst: case Op::kDmaReps: case Op::kDmaStart:
      ready = xready_[static_cast<std::size_t>(in.rs1)];
      break;
    default:
      break;
  }
  if (ready > cycle) {
    perf_.raw_stall_cycles += ready - cycle;
    int_next_issue_ = ready;
    return false;
  }
  return true;
}

void SnitchCore::step_int(std::uint64_t cycle, Memory& mem,
                          ClusterServices& svc) {
  if (halted_ || prog_ == nullptr) return;
  if (int_next_issue_ > cycle) return;
  if (in_barrier_) {
    if (!svc.barrier_arrive(id_, /*polling=*/true)) return;
    in_barrier_ = false;
    ++pc_;
    return;
  }

  SPK_CHECK(pc_ < prog_->code.size(), "pc out of range on core " << id_);
  const Instr& in = prog_->code[pc_];

  // Shared instruction cache: cold lines pay a refill penalty once.
  if (svc.icache_penalty) {
    const int pen = svc.icache_penalty(pc_);
    if (pen > 0) {
      int_next_issue_ = cycle + static_cast<std::uint64_t>(pen);
      return;
    }
  }

  if (!int_srcs_ready(in, cycle)) return;

  auto wx = [&](int rd, std::uint32_t v) {
    if (rd != 0) {
      xreg_[static_cast<std::size_t>(rd)] = v;
      xready_[static_cast<std::size_t>(rd)] = cycle + 1;
    }
  };
  auto rx = [&](int r) { return xreg_[static_cast<std::size_t>(r)]; };
  auto retire = [&] {
    record_trace(cycle, pc_, in, /*fpu=*/false);
    ++perf_.int_instrs;
    ++pc_;
  };
  auto stall_mem = [&] { ++perf_.tcdm_stall_cycles; };

  switch (in.op) {
    case Op::kNop: retire(); break;
    case Op::kAdd: wx(in.rd, rx(in.rs1) + rx(in.rs2)); retire(); break;
    case Op::kSub: wx(in.rd, rx(in.rs1) - rx(in.rs2)); retire(); break;
    case Op::kAnd: wx(in.rd, rx(in.rs1) & rx(in.rs2)); retire(); break;
    case Op::kOr: wx(in.rd, rx(in.rs1) | rx(in.rs2)); retire(); break;
    case Op::kXor: wx(in.rd, rx(in.rs1) ^ rx(in.rs2)); retire(); break;
    case Op::kSll: wx(in.rd, rx(in.rs1) << (rx(in.rs2) & 31)); retire(); break;
    case Op::kSrl: wx(in.rd, rx(in.rs1) >> (rx(in.rs2) & 31)); retire(); break;
    case Op::kMul: wx(in.rd, rx(in.rs1) * rx(in.rs2)); retire(); break;
    case Op::kDivu: case Op::kRemu: {
      // Serial divider: result ready after a multi-cycle latency.
      const std::uint32_t b = rx(in.rs2);
      const std::uint32_t q = b == 0 ? ~0u : rx(in.rs1) / b;
      const std::uint32_t rem = b == 0 ? rx(in.rs1) : rx(in.rs1) % b;
      wx(in.rd, in.op == Op::kDivu ? q : rem);
      if (in.rd != 0) xready_[static_cast<std::size_t>(in.rd)] = cycle + 8;
      retire();
      break;
    }
    case Op::kAddi: wx(in.rd, rx(in.rs1) + static_cast<std::uint32_t>(in.imm)); retire(); break;
    case Op::kSlli: wx(in.rd, rx(in.rs1) << in.imm); retire(); break;
    case Op::kSrli: wx(in.rd, rx(in.rs1) >> in.imm); retire(); break;
    case Op::kAndi: wx(in.rd, rx(in.rs1) & static_cast<std::uint32_t>(in.imm)); retire(); break;
    case Op::kOri: wx(in.rd, rx(in.rs1) | static_cast<std::uint32_t>(in.imm)); retire(); break;
    case Op::kLi: wx(in.rd, static_cast<std::uint32_t>(in.imm)); retire(); break;

    case Op::kLw: case Op::kLh: case Op::kLhu: case Op::kLbu: {
      const Addr a = rx(in.rs1) + static_cast<Addr>(in.imm);
      if (!mem.request(a)) { stall_mem(); return; }
      std::uint32_t v = 0;
      if (in.op == Op::kLw) v = mem.load<std::uint32_t>(a);
      else if (in.op == Op::kLh) v = static_cast<std::uint32_t>(static_cast<std::int32_t>(mem.load<std::int16_t>(a)));
      else if (in.op == Op::kLhu) v = mem.load<std::uint16_t>(a);
      else v = mem.load<std::uint8_t>(a);
      wx(in.rd, v);
      if (in.rd != 0) {
        xready_[static_cast<std::size_t>(in.rd)] =
            cycle + static_cast<std::uint64_t>(cfg_.load_use_latency);
      }
      retire();
      break;
    }
    case Op::kSw: case Op::kSh: case Op::kSb: {
      const Addr a = rx(in.rs1) + static_cast<Addr>(in.imm);
      if (!mem.request(a)) { stall_mem(); return; }
      if (in.op == Op::kSw) mem.store<std::uint32_t>(a, rx(in.rs2));
      else if (in.op == Op::kSh) mem.store<std::uint16_t>(a, static_cast<std::uint16_t>(rx(in.rs2)));
      else mem.store<std::uint8_t>(a, static_cast<std::uint8_t>(rx(in.rs2)));
      retire();
      break;
    }
    case Op::kAmoAdd: {
      const Addr a = rx(in.rs1);
      if (!mem.request(a)) { stall_mem(); return; }
      const std::uint32_t old = mem.load<std::uint32_t>(a);
      mem.store<std::uint32_t>(a, old + rx(in.rs2));
      wx(in.rd, old);
      if (in.rd != 0) xready_[static_cast<std::size_t>(in.rd)] = cycle + 2;
      int_next_issue_ = cycle + 2;  // read-modify-write occupies an extra cycle
      retire();
      break;
    }

    case Op::kBne: case Op::kBeq: case Op::kBlt: case Op::kBge: case Op::kJ: {
      bool taken = true;
      const auto a = static_cast<std::int32_t>(rx(in.rs1));
      const auto b = static_cast<std::int32_t>(rx(in.rs2));
      if (in.op == Op::kBne) taken = a != b;
      else if (in.op == Op::kBeq) taken = a == b;
      else if (in.op == Op::kBlt) taken = a < b;
      else if (in.op == Op::kBge) taken = a >= b;
      record_trace(cycle, pc_, in, /*fpu=*/false);
      ++perf_.int_instrs;
      if (taken) {
        pc_ = static_cast<std::size_t>(in.imm);
        int_next_issue_ = cycle + 1 + static_cast<std::uint64_t>(cfg_.branch_penalty);
        perf_.branch_penalty_cycles += static_cast<std::uint64_t>(cfg_.branch_penalty);
      } else {
        ++pc_;
      }
      break;
    }
    case Op::kHalt:
      record_trace(cycle, pc_, in, /*fpu=*/false);
      ++perf_.int_instrs;
      halted_ = true;
      halt_cycle_ = cycle;
      break;

    case Op::kCsrCoreId: wx(in.rd, static_cast<std::uint32_t>(id_)); retire(); break;
    case Op::kCsrNumCores: wx(in.rd, static_cast<std::uint32_t>(svc.num_cores)); retire(); break;
    case Op::kCsrCycle: wx(in.rd, static_cast<std::uint32_t>(cycle)); retire(); break;

    case Op::kBarrier:
      ++perf_.int_instrs;
      if (svc.barrier_arrive(id_, /*polling=*/false)) { ++pc_; }
      else { in_barrier_ = true; }
      break;

    case Op::kFpuFence: {
      if (!fpu_q_.empty()) return;  // keep polling
      std::uint64_t last = 0;
      for (std::uint64_t r : fready_) last = std::max(last, r);
      if (last > cycle) { int_next_issue_ = last; return; }
      retire();
      break;
    }

    case Op::kFld: {
      // WAW with a queued writer or WAR with a queued reader of this reg.
      if (fp_reg_busy(in.rd) || fp_reg_read_pending(in.rd)) return;
      const Addr a = rx(in.rs1) + static_cast<Addr>(in.imm);
      if (!mem.request(a)) { stall_mem(); return; }
      freg_[static_cast<std::size_t>(in.rd)] = mem.load<double>(a);
      fready_[static_cast<std::size_t>(in.rd)] =
          cycle + static_cast<std::uint64_t>(cfg_.fpu.fload);
      ++perf_.fp_loads;
      retire();
      break;
    }
    case Op::kFsd: {
      const auto fs = static_cast<std::size_t>(in.rs2);
      if (fp_reg_busy(in.rs2)) return;
      if (fready_[fs] > cycle) { int_next_issue_ = fready_[fs]; return; }
      const Addr a = rx(in.rs1) + static_cast<Addr>(in.imm);
      if (!mem.request(a)) { stall_mem(); return; }
      mem.store<double>(a, freg_[fs]);
      ++perf_.fp_loads;
      retire();
      break;
    }
    case Op::kFmvFX: case Op::kFcvtDW: {
      if (fp_reg_busy(in.rd) || fp_reg_read_pending(in.rd)) return;
      freg_[static_cast<std::size_t>(in.rd)] =
          static_cast<double>(static_cast<std::int32_t>(rx(in.rs1)));
      fready_[static_cast<std::size_t>(in.rd)] = cycle + 2;
      retire();
      break;
    }
    case Op::kFmvXF: {
      const auto fs = static_cast<std::size_t>(in.rs1);
      if (fp_reg_busy(in.rs1)) return;
      if (fready_[fs] > cycle) { int_next_issue_ = fready_[fs]; return; }
      wx(in.rd, static_cast<std::uint32_t>(static_cast<std::int64_t>(freg_[fs])));
      retire();
      break;
    }

    case Op::kFadd: case Op::kFsub: case Op::kFmul: case Op::kFmadd: {
      if (fpu_q_.size() >= cfg_.fpu_queue_depth) return;
      FpuEntry e;
      e.body[0] = in;
      e.body_len = 1;
      e.reps = 1;
      ++pending_fp_writes_[static_cast<std::size_t>(in.rd)];
      fpu_q_.push_back(e);
      retire();
      break;
    }
    case Op::kFrep: {
      if (fpu_q_.size() >= cfg_.fpu_queue_depth) return;
      FpuEntry e;
      e.body_len = in.rd;
      SPK_CHECK(e.body_len >= 1 && e.body_len <= 8, "frep body too long");
      e.reps = rx(in.rs1) + 1;
      for (int k = 0; k < e.body_len; ++k) {
        const Instr& bi = prog_->code[pc_ + 1 + static_cast<std::size_t>(k)];
        SPK_CHECK(is_fpu_op(bi.op), "frep body must be FP compute ops");
        e.body[k] = bi;
        pending_fp_writes_[static_cast<std::size_t>(bi.rd)] +=
            static_cast<int>(e.reps);
      }
      if (e.reps > 0) fpu_q_.push_back(e);
      record_trace(cycle, pc_, in, /*fpu=*/false);
      ++perf_.int_instrs;
      pc_ += 1 + static_cast<std::size_t>(e.body_len);
      break;
    }

    case Op::kSsrCfgBound: {
      auto& s = ssrs_[static_cast<std::size_t>(in.rd)].shadow();
      s.bounds[in.imm] = rx(in.rs1);
      retire();
      break;
    }
    case Op::kSsrCfgStride: {
      auto& s = ssrs_[static_cast<std::size_t>(in.rd)].shadow();
      s.strides[in.imm] = static_cast<std::int32_t>(rx(in.rs1));
      retire();
      break;
    }
    case Op::kSsrCfgBase:
      ssrs_[static_cast<std::size_t>(in.rd)].shadow().base = rx(in.rs1);
      retire();
      break;
    case Op::kSsrCfgIdx: {
      auto& s = ssrs_[static_cast<std::size_t>(in.rd)].shadow();
      s.idx_base = rx(in.rs1);
      s.idx_bytes = 1 << in.imm;
      retire();
      break;
    }
    case Op::kSsrCfgLen:
      ssrs_[static_cast<std::size_t>(in.rd)].shadow().length = rx(in.rs1);
      retire();
      break;
    case Op::kSsrCommit: {
      auto& ssr = ssrs_[static_cast<std::size_t>(in.rd)];
      ssr.shadow().mode = static_cast<SsrMode>(in.imm);
      if (!ssr.commit()) return;  // shadow slot occupied: stall and retry
      retire();
      break;
    }
    case Op::kSsrEnable: ssr_enabled_ = true; retire(); break;
    case Op::kSsrDisable: {
      for (const Ssr& s : ssrs_) {
        if (!s.fully_idle()) return;  // wait for stream teardown
      }
      ssr_enabled_ = false;
      retire();
      break;
    }

    case Op::kDmaSrc: dma_stage_.src = rx(in.rs1); retire(); break;
    case Op::kDmaDst: dma_stage_.dst = rx(in.rs1); retire(); break;
    case Op::kDmaStr:
      dma_stage_.src_stride = static_cast<std::int32_t>(rx(in.rs1));
      dma_stage_.dst_stride = static_cast<std::int32_t>(rx(in.rs2));
      retire();
      break;
    case Op::kDmaReps: dma_stage_.reps = rx(in.rs1); retire(); break;
    case Op::kDmaStart: {
      SPK_CHECK(svc.dma != nullptr, "no DMA engine attached");
      dma_stage_.row_bytes = rx(in.rs1);
      if (dma_stage_.reps == 0) dma_stage_.reps = 1;
      svc.dma->enqueue(dma_stage_);
      wx(in.rd, 0);
      dma_stage_ = {};
      retire();
      break;
    }
    case Op::kDmaWait:
      SPK_CHECK(svc.dma != nullptr, "no DMA engine attached");
      if (!svc.dma->idle()) return;
      retire();
      break;
  }
}

void SnitchCore::step_fpu(std::uint64_t cycle, Memory& mem) {
  (void)mem;
  if (fpu_q_.empty() || fpu_next_issue_ > cycle) return;
  FpuEntry& e = fpu_q_.front();
  const Instr& in = e.body[e.pos];

  // While SSRs are enabled, f0..f2 are unconditionally stream-mapped: a read
  // before the stream's data arrives (or before the integer core has even
  // committed the stream) stalls the FPU rather than reading the register.
  auto src_is_ssr = [&](int r) { return ssr_enabled_ && r < 3; };
  auto dst_is_ssr = [&](int r) { return ssr_enabled_ && r < 3; };

  // Gather source requirements. fmadd additionally reads its destination
  // (accumulator); fadd/fsub/fmul read rs1/rs2 only.
  int srcs[3];
  int n_srcs = 0;
  srcs[n_srcs++] = in.rs1;
  srcs[n_srcs++] = in.rs2;
  if (in.op == Op::kFmadd && !dst_is_ssr(in.rd)) srcs[n_srcs++] = in.rd;

  for (int k = 0; k < n_srcs; ++k) {
    const int r = srcs[k];
    if (src_is_ssr(r)) {
      if (!ssrs_[static_cast<std::size_t>(r)].can_pop()) {
        ++perf_.fpu_ssr_stall_cycles;
        return;
      }
    } else if (fready_[static_cast<std::size_t>(r)] > cycle) {
      ++perf_.fpu_raw_stall_cycles;
      return;
    }
  }
  if (dst_is_ssr(in.rd) &&
      !ssrs_[static_cast<std::size_t>(in.rd)].can_push()) {
    ++perf_.fpu_ssr_stall_cycles;
    return;
  }

  auto read_src = [&](int r) -> double {
    if (src_is_ssr(r)) return ssrs_[static_cast<std::size_t>(r)].pop(perf_);
    return freg_[static_cast<std::size_t>(r)];
  };

  const double a = read_src(in.rs1);
  const double b = read_src(in.rs2);
  double result = 0.0;
  int lat = cfg_.fpu.fadd;
  switch (in.op) {
    case Op::kFadd: result = a + b; lat = cfg_.fpu.fadd; break;
    case Op::kFsub: result = a - b; lat = cfg_.fpu.fadd; break;
    case Op::kFmul: result = a * b; lat = cfg_.fpu.fmul; break;
    case Op::kFmadd: {
      const double acc =
          dst_is_ssr(in.rd) ? 0.0 : freg_[static_cast<std::size_t>(in.rd)];
      result = acc + a * b;
      lat = cfg_.fpu.fmadd;
      break;
    }
    default:
      SPK_CHECK(false, "non-FP op in FPU queue: " << disasm(in));
  }

  if (dst_is_ssr(in.rd)) {
    ssrs_[static_cast<std::size_t>(in.rd)].push(result);
  } else {
    freg_[static_cast<std::size_t>(in.rd)] = result;
    fready_[static_cast<std::size_t>(in.rd)] =
        cycle + static_cast<std::uint64_t>(lat);
  }
  --pending_fp_writes_[static_cast<std::size_t>(in.rd)];
  record_trace(cycle, 0, in, /*fpu=*/true);
  ++perf_.fp_ops;
  if (e.reps > 1) ++perf_.frep_expanded;
  fpu_next_issue_ = cycle + 1;

  if (++e.pos >= e.body_len) {
    e.pos = 0;
    if (++e.rep >= e.reps) fpu_q_.pop_front();
  }
}

}  // namespace spikestream::arch
