// Cluster DMA engine: asynchronous 1D/2D copies between global memory and the
// TCDM over a 512-bit (64 B/cycle) port. Programmed by the dedicated DMA core
// (or any core) through the kDma* instructions. Transfers are serviced in
// FIFO order; the first beat of each transfer pays the global-memory latency.
// Port width and first-beat latency come from MemConfig, whose defaults are
// the shared DRAM constants of arch/dram/dram.hpp — the same source of truth
// the planner's cost queries (flat and banked) price transfers from.
//
// TCDM-side beats claim banks through the shared arbiter *after* the worker
// cores have stepped each cycle, i.e. cores have priority — matching the
// paper's assumption that double-buffered DMA traffic steals only idle
// bandwidth.
#pragma once

#include <cstdint>
#include <deque>

#include "arch/mem.hpp"

namespace spikestream::arch {

struct DmaTransfer {
  Addr src = 0;
  Addr dst = 0;
  std::uint32_t row_bytes = 0;
  std::uint32_t reps = 1;          ///< number of rows (1 = flat copy)
  std::int32_t src_stride = 0;     ///< byte stride between rows
  std::int32_t dst_stride = 0;
};

class DmaEngine {
 public:
  void enqueue(const DmaTransfer& t) { queue_.push_back(t); }
  bool idle() const { return queue_.empty() && !busy_; }

  std::uint64_t bytes_moved() const { return bytes_moved_; }
  std::uint64_t busy_cycles() const { return busy_cycles_; }

  /// Advance one cycle: move up to 64 bytes if a transfer is in flight.
  void step(Memory& mem) {
    if (!busy_) {
      if (queue_.empty()) return;
      cur_ = queue_.front();
      queue_.pop_front();
      busy_ = true;
      row_ = 0;
      row_done_ = 0;
      latency_left_ = mem.config().global_latency;
    }
    ++busy_cycles_;
    if (latency_left_ > 0) {
      --latency_left_;
      return;
    }

    // Move up to one 64 B beat, bounded by TCDM bank availability.
    std::uint32_t budget =
        static_cast<std::uint32_t>(mem.config().global_bytes_per_cycle);
    while (budget > 0 && busy_) {
      const Addr src = cur_.src + static_cast<Addr>(row_) *
                                      static_cast<Addr>(cur_.src_stride) +
                       row_done_;
      const Addr dst = cur_.dst + static_cast<Addr>(row_) *
                                      static_cast<Addr>(cur_.dst_stride) +
                       row_done_;
      const std::uint32_t left_in_row = cur_.row_bytes - row_done_;
      std::uint32_t chunk = std::min<std::uint32_t>(8, left_in_row);
      chunk = std::min(chunk, budget);
      // One bank claim per touched 8-byte TCDM word; if the bank is taken
      // this cycle, stop (retry next cycle) — cores keep priority.
      const Addr tcdm_side = mem.is_tcdm(dst) ? dst : src;
      if (mem.is_tcdm(tcdm_side) && !mem.request(tcdm_side)) return;
      mem.copy(dst, src, chunk);
      bytes_moved_ += chunk;
      budget -= chunk;
      row_done_ += chunk;
      if (row_done_ >= cur_.row_bytes) {
        row_done_ = 0;
        if (++row_ >= cur_.reps) busy_ = false;
      }
    }
  }

 private:
  std::deque<DmaTransfer> queue_;
  DmaTransfer cur_;
  bool busy_ = false;
  std::uint32_t row_ = 0;
  std::uint32_t row_done_ = 0;
  int latency_left_ = 0;
  std::uint64_t bytes_moved_ = 0;
  std::uint64_t busy_cycles_ = 0;
};

}  // namespace spikestream::arch
