#include "arch/program.hpp"

#include <sstream>

#include "common/check.hpp"

namespace spikestream::arch {

std::string disasm(const Instr& i) {
  std::ostringstream os;
  auto r3 = [&](const char* m) {
    os << m << " x" << i.rd << ", x" << i.rs1 << ", x" << i.rs2;
  };
  auto ri = [&](const char* m) {
    os << m << " x" << i.rd << ", x" << i.rs1 << ", " << i.imm;
  };
  auto f3 = [&](const char* m) {
    os << m << " f" << i.rd << ", f" << i.rs1 << ", f" << i.rs2;
  };
  switch (i.op) {
    case Op::kNop: os << "nop"; break;
    case Op::kAdd: r3("add"); break;
    case Op::kSub: r3("sub"); break;
    case Op::kAnd: r3("and"); break;
    case Op::kOr: r3("or"); break;
    case Op::kXor: r3("xor"); break;
    case Op::kSll: r3("sll"); break;
    case Op::kSrl: r3("srl"); break;
    case Op::kMul: r3("mul"); break;
    case Op::kDivu: r3("divu"); break;
    case Op::kRemu: r3("remu"); break;
    case Op::kAddi: ri("addi"); break;
    case Op::kSlli: ri("slli"); break;
    case Op::kSrli: ri("srli"); break;
    case Op::kAndi: ri("andi"); break;
    case Op::kOri: ri("ori"); break;
    case Op::kLi: os << "li x" << i.rd << ", " << i.imm; break;
    case Op::kLw: os << "lw x" << i.rd << ", " << i.imm << "(x" << i.rs1 << ")"; break;
    case Op::kLh: os << "lh x" << i.rd << ", " << i.imm << "(x" << i.rs1 << ")"; break;
    case Op::kLhu: os << "lhu x" << i.rd << ", " << i.imm << "(x" << i.rs1 << ")"; break;
    case Op::kLbu: os << "lbu x" << i.rd << ", " << i.imm << "(x" << i.rs1 << ")"; break;
    case Op::kSw: os << "sw x" << i.rs2 << ", " << i.imm << "(x" << i.rs1 << ")"; break;
    case Op::kSh: os << "sh x" << i.rs2 << ", " << i.imm << "(x" << i.rs1 << ")"; break;
    case Op::kSb: os << "sb x" << i.rs2 << ", " << i.imm << "(x" << i.rs1 << ")"; break;
    case Op::kAmoAdd: r3("amoadd.w"); break;
    case Op::kBne: os << "bne x" << i.rs1 << ", x" << i.rs2 << ", @" << i.imm; break;
    case Op::kBeq: os << "beq x" << i.rs1 << ", x" << i.rs2 << ", @" << i.imm; break;
    case Op::kBlt: os << "blt x" << i.rs1 << ", x" << i.rs2 << ", @" << i.imm; break;
    case Op::kBge: os << "bge x" << i.rs1 << ", x" << i.rs2 << ", @" << i.imm; break;
    case Op::kJ: os << "j @" << i.imm; break;
    case Op::kHalt: os << "halt"; break;
    case Op::kCsrCoreId: os << "csrr x" << i.rd << ", coreid"; break;
    case Op::kCsrNumCores: os << "csrr x" << i.rd << ", numcores"; break;
    case Op::kCsrCycle: os << "csrr x" << i.rd << ", cycle"; break;
    case Op::kBarrier: os << "barrier"; break;
    case Op::kFpuFence: os << "fpufence"; break;
    case Op::kFld: os << "fld f" << i.rd << ", " << i.imm << "(x" << i.rs1 << ")"; break;
    case Op::kFsd: os << "fsd f" << i.rs2 << ", " << i.imm << "(x" << i.rs1 << ")"; break;
    case Op::kFadd: f3("fadd.d"); break;
    case Op::kFsub: f3("fsub.d"); break;
    case Op::kFmul: f3("fmul.d"); break;
    case Op::kFmadd: f3("fmadd.d"); break;
    case Op::kFmvFX: os << "fmv f" << i.rd << ", x" << i.rs1; break;
    case Op::kFmvXF: os << "fmv x" << i.rd << ", f" << i.rs1; break;
    case Op::kFcvtDW: os << "fcvt.d.w f" << i.rd << ", x" << i.rs1; break;
    case Op::kFrep: os << "frep body=" << i.rd << " reps=x" << i.rs1; break;
    case Op::kSsrCfgBound: os << "ssr.bound ssr" << i.rd << " dim" << i.imm << ", x" << i.rs1; break;
    case Op::kSsrCfgStride: os << "ssr.stride ssr" << i.rd << " dim" << i.imm << ", x" << i.rs1; break;
    case Op::kSsrCfgBase: os << "ssr.base ssr" << i.rd << ", x" << i.rs1; break;
    case Op::kSsrCfgIdx: os << "ssr.idx ssr" << i.rd << ", x" << i.rs1 << " sz=" << i.imm; break;
    case Op::kSsrCfgLen: os << "ssr.len ssr" << i.rd << ", x" << i.rs1; break;
    case Op::kSsrCommit: os << "ssr.commit ssr" << i.rd << " mode=" << i.imm; break;
    case Op::kSsrEnable: os << "ssr.enable"; break;
    case Op::kSsrDisable: os << "ssr.disable"; break;
    case Op::kDmaSrc: os << "dma.src x" << i.rs1; break;
    case Op::kDmaDst: os << "dma.dst x" << i.rs1; break;
    case Op::kDmaStr: os << "dma.str x" << i.rs1 << ", x" << i.rs2; break;
    case Op::kDmaReps: os << "dma.reps x" << i.rs1; break;
    case Op::kDmaStart: os << "dma.start x" << i.rd << ", x" << i.rs1; break;
    case Op::kDmaWait: os << "dma.wait"; break;
  }
  return os.str();
}

void Asm::label(const std::string& name) {
  SPK_CHECK(labels_.find(name) == labels_.end(), "duplicate label " << name);
  labels_[name] = code_.size();
}

void Asm::branch(Op op, int rs1, int rs2, const std::string& target) {
  fixups_.push_back({code_.size(), target});
  emit({op, 0, n16(rs1), n16(rs2), 0});
}

Program Asm::finish() {
  for (const auto& f : fixups_) {
    auto it = labels_.find(f.label);
    SPK_CHECK(it != labels_.end(), "undefined label " << f.label);
    code_[f.instr_index].imm = static_cast<std::int64_t>(it->second);
  }
  Program p;
  p.code = std::move(code_);
  code_.clear();
  labels_.clear();
  fixups_.clear();
  return p;
}

}  // namespace spikestream::arch
