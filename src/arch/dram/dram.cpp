#include "arch/dram/dram.hpp"

namespace spikestream::arch {

const char* dram_format_name(DramFormat f) {
  switch (f) {
    case DramFormat::kPacked: return "packed";
    case DramFormat::kFixedStride: return "fixed-stride";
  }
  return "?";
}

}  // namespace spikestream::arch
