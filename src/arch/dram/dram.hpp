// Banked-DRAM timing model (ROADMAP "High-fidelity memory system").
//
// The planner's cost queries used to price every DMA byte at one flat
// bandwidth plus one flat per-transfer latency, so a sequential weight-band
// stream and a strided partial-sum spill cost the same per byte. This header
// is the single source of truth for the external-memory timing instead:
//
//  * `DramConfig` — bank count, row-buffer size and tCAS/tRP/tRCD-style
//    row-hit vs row-miss first-beat costs, plus the flat-bandwidth legacy
//    constants (`flat_legacy` reproduces the historical numbers bit-exactly).
//  * `DramConfig::stream()` — closed-form cost of an access sequence of
//    `n_runs` contiguous runs: row activations, row-buffer hits and busy
//    cycles are derived per run, never per beat, so the planner's hot path
//    stays allocation-free and O(1) per stream.
//  * Storage formats (packed vs fixed-stride) for weight bands and
//    spike/CSR payloads: packed moves exactly the compressed payload,
//    fixed-stride pads every record up to a stride quantum (simpler
//    addressing, never fewer bytes).
//
// The cycle-level DMA engine (arch/dma.hpp) and the cluster memory map
// (arch/mem.hpp) source their flat first-beat latency and port width from
// the same constants below, so legacy mode and the banked model can never
// drift apart.
#pragma once

#include <algorithm>
#include <cmath>

namespace spikestream::arch {

// Flat-model constants shared by MemConfig (cycle-level DMA), the legacy
// cost-query expressions and the banked model's request overhead. One
// definition; every consumer derives from here.
inline constexpr int kDramBytesPerCycle = 64;   ///< 512-bit port to L2/HBM
inline constexpr int kDramRequestLatency = 100; ///< cycles to first beat

/// SEC-DED ECC model for the external-memory channel and the SPM (PR-10 data
/// integrity). A (72,64) Hamming+parity code: every 64-bit data word carries
/// 8 check bits; single-bit errors are corrected in-line, double-bit errors
/// are detected but uncorrectable (they surface as a machine-check — in the
/// serving stack, a TransientFault retry). Off by default: with
/// `enabled == false` every counter stays zero and no cycle or energy term
/// changes, the same `flat_legacy`-style bit-exactness contract the banked
/// DRAM model honors.
///
/// The model is closed-form over the words a layer actually moved (DRAM
/// beats and TCDM interconnect words — see finish_timing's overlay in
/// kernels/layer_kernels.cpp): expected corrected / uncorrectable counts are
/// binomial expectations at raw bit-error rate `ber` per (72-bit codeword,
/// access), never drawn from a RNG, so modeled numbers replay bit-identically
/// on any host.
struct EccConfig {
  bool enabled = false;  ///< master switch; false = bit-exact legacy numbers

  /// Raw per-bit error probability per access (a DDR4-class figure; scale it
  /// up in benches to make the expected counts visible).
  double ber = 1e-12;

  // --- overhead timing ------------------------------------------------------
  /// Decode/correct pipeline cost per 64 B DRAM beat. The checker runs wide
  /// (8 codewords per beat in parallel) and mostly pipelines under the
  /// transfer, so the exposed cost is a fraction of a cycle per beat.
  double dram_cycles_per_beat = 0.25;
  /// Amortized check cost per 64-bit word through the TCDM interconnect.
  /// SEC-DED on SPM reads adds one pipeline stage whose latency hides under
  /// the issue-limited streams; the exposed cost is the occasional stall when
  /// the checker's result lands on the critical path (~1 word in 200).
  double spm_cycles_per_word = 0.005;
  /// Background scrub: every `scrub_interval_cycles` the controller re-reads
  /// the layer's DRAM-resident footprint to flush accumulating single-bit
  /// errors before they pair up. Amortized into the layer's cycles as
  /// (layer cycles / interval) * (footprint bytes / channel bandwidth).
  /// 10 ms at 1 GHz — aggressive next to real controllers' multi-second
  /// sweeps, but visible in short simulated windows. 0 disables scrub
  /// modeling.
  double scrub_interval_cycles = 1.0e7;

  /// Bits per protected codeword: 64 data + 8 check.
  static constexpr double kCodewordBits = 72.0;

  /// Expected single-bit (corrected) errors over `words` codeword accesses.
  double expected_corrected(double words) const {
    return words * kCodewordBits * ber;
  }
  /// Expected double-bit (detected-uncorrectable) errors over `words`
  /// accesses: C(72,2) * ber^2 per codeword.
  double expected_uncorrectable(double words) const {
    return words * (kCodewordBits * (kCodewordBits - 1.0) / 2.0) * ber * ber;
  }
};

/// How a stream's records are laid out in DRAM.
enum class DramFormat {
  kPacked,       ///< records back to back: bytes moved == payload bytes
  kFixedStride,  ///< records padded to a fixed stride slot (simple address
                 ///< arithmetic, bytes moved >= payload bytes)
};

const char* dram_format_name(DramFormat f);

/// Closed-form cost of one or more access sequences. `bytes` are the bytes
/// actually moved (post-format); hits/misses count row-buffer outcomes at
/// 64 B beat granularity, so hit_rate() reads as "fraction of beats served
/// from an open row".
struct DramCost {
  double bytes = 0;
  double cycles = 0;
  double row_hits = 0;
  double row_misses = 0;

  void accumulate(const DramCost& o) {
    bytes += o.bytes;
    cycles += o.cycles;
    row_hits += o.row_hits;
    row_misses += o.row_misses;
  }
  double hit_rate() const {
    const double beats = row_hits + row_misses;
    return beats > 0 ? row_hits / beats : 0.0;
  }
};

struct DramConfig {
  /// Reproduce the historical flat pricing exactly: cost queries keep the
  /// original bytes/bandwidth + transfers*latency expressions (same
  /// floating-point operation order) and report zero row activity. The
  /// banked model below is opt-in via `banked()`.
  bool flat_legacy = true;

  // --- channel (shared by both modes) --------------------------------------
  double bytes_per_cycle = kDramBytesPerCycle;
  double request_latency = kDramRequestLatency;  ///< controller + flight time

  // --- bank/row geometry and timing (banked mode) --------------------------
  int banks = 8;            ///< row activations interleave across banks
  double row_bytes = 2048;  ///< row-buffer (DRAM page) size
  double t_cas = 12;        ///< column access on an open row (row hit)
  double t_rp = 18;         ///< precharge the open row
  double t_rcd = 20;        ///< activate the new row
  /// Allow the segment-major schedule to trade one resident batch lane for a
  /// bounce buffer that overlaps spill/fill with the next band's weight
  /// stream (see kernels/tiling.hpp). Banked mode only.
  bool spill_double_buffer = true;

  // --- storage formats -----------------------------------------------------
  DramFormat weight_format = DramFormat::kPacked;
  DramFormat payload_format = DramFormat::kPacked;  ///< spike/CSR payloads
  double stride_quantum = 256;  ///< fixed-stride record slot granularity

  // --- error protection ----------------------------------------------------
  /// SEC-DED ECC on the channel and the SPM. Off by default (bit-exact
  /// historical numbers); kernels overlay its cycle/energy cost and expected
  /// corrected/uncorrectable counts in finish_timing when enabled.
  EccConfig ecc;

  /// First-beat penalty on a closed (or wrong) row: tRP + tRCD + tCAS.
  double row_miss_cost() const { return t_rp + t_rcd + t_cas; }
  /// First-beat cost on an open row.
  double row_hit_cost() const { return t_cas; }

  /// Cycles of row-activation latency the bank-level parallelism can hide:
  /// while one bank activates, the other banks' open rows keep the channel
  /// busy for (banks-1) row-transfers in steady state. Activations beyond
  /// the first of a long sequential run are exposed only past this window.
  double hidden_activation_window() const {
    return (static_cast<double>(banks) - 1.0) * row_bytes / bytes_per_cycle;
  }

  /// Bytes actually moved for `payload_bytes` of data split into `n_records`
  /// records stored under format `f`. Packed moves the payload exactly;
  /// fixed-stride rounds every record up to the stride quantum.
  double stored_bytes(DramFormat f, double payload_bytes,
                      double n_records) const {
    if (f == DramFormat::kPacked || payload_bytes <= 0 || n_records <= 0) {
      return payload_bytes;
    }
    const double record = payload_bytes / n_records;
    const double slot = std::ceil(record / stride_quantum) * stride_quantum;
    return std::max(payload_bytes, slot * n_records);
  }

  /// Closed-form cost of an access sequence: `total_bytes` split into
  /// `n_runs` contiguous runs (a run = one DMA transfer touching consecutive
  /// addresses; distinct runs land on unrelated rows). Fractional `n_runs`
  /// are per-sample amortized batch means — the per-run shape is still
  /// priced from the true run size `total_bytes / n_runs`.
  ///
  /// Per run: the first row always misses (request_latency + row_miss_cost
  /// before the first beat); subsequent rows of the same run activate while
  /// the other banks stream, so only the part of row_miss_cost that exceeds
  /// hidden_activation_window() is exposed. Data beats move at
  /// bytes_per_cycle regardless — the row model only adds first-beat
  /// latencies, which is what makes many-small-run (strided) sequences
  /// expensive and few-large-run (sequential) sequences approach peak
  /// bandwidth.
  DramCost stream(double total_bytes, double n_runs) const {
    DramCost c;
    c.bytes = total_bytes;
    if (total_bytes <= 0 || n_runs <= 0) return c;
    if (flat_legacy) {
      c.cycles = total_bytes / bytes_per_cycle + n_runs * request_latency;
      return c;  // flat mode: no row accounting
    }
    const double run_bytes = total_bytes / n_runs;
    const double beats = std::ceil(run_bytes / bytes_per_cycle);
    const double rows = std::max(1.0, std::ceil(run_bytes / row_bytes));
    const double exposed_extra =
        std::max(0.0, row_miss_cost() - hidden_activation_window());
    c.row_misses = n_runs * rows;
    c.row_hits = std::max(0.0, n_runs * (beats - rows));
    c.cycles = total_bytes / bytes_per_cycle +
               n_runs * (request_latency + row_miss_cost() +
                         (rows - 1.0) * exposed_extra);
    return c;
  }

  /// The historical flat model, spelled explicitly.
  static DramConfig flat() { return DramConfig{}; }

  /// Banked row-buffer timing with default geometry.
  static DramConfig banked() {
    DramConfig d;
    d.flat_legacy = false;
    return d;
  }
};

}  // namespace spikestream::arch
