// StreamReader: converts access sequences into row-hit/row-miss counts and
// busy cycles against a DramConfig, analytically — per contiguous run (or
// per touched row for the address-tracking variant), never per beat. All
// state is inline fixed-size storage, so steady-state accounting allocates
// nothing (pinned by tests/test_scratch_reuse.cpp).
//
// Two accounting surfaces:
//  * stream()/write(): stateless amortized runs — what the tile planner's
//    cost queries use (run counts may be fractional per-sample batch means).
//  * touch(): address-tracked accesses against per-bank open-row state —
//    consecutive touches to the same row hit regardless of run boundaries,
//    which is what makes re-reads of a resident row cheap and interleaved
//    streams (spill slices between weight bands) pay real activations.
#pragma once

#include <array>
#include <cstdint>

#include "arch/dram/dram.hpp"

namespace spikestream::arch {

class StreamReader {
 public:
  static constexpr int kMaxBanks = 32;

  explicit StreamReader(const DramConfig& cfg) : cfg_(cfg) { reset(); }

  const DramConfig& config() const { return cfg_; }
  const DramCost& cost() const { return cost_; }

  void reset() {
    cost_ = DramCost{};
    open_row_.fill(-1);
  }

  /// Account one read sequence: `total_bytes` over `n_runs` contiguous runs
  /// (closed-form, stateless — see DramConfig::stream).
  void stream(double total_bytes, double n_runs) {
    cost_.accumulate(cfg_.stream(total_bytes, n_runs));
  }
  /// Writes share the channel and the row buffers; timing is symmetric.
  void write(double total_bytes, double n_runs) { stream(total_bytes, n_runs); }

  /// Account a read of `payload_bytes` split into `n_records` records stored
  /// under format `f` (the stored, possibly padded, bytes are what moves).
  void stream_records(DramFormat f, double payload_bytes, double n_records,
                      double n_runs) {
    stream(cfg_.stored_bytes(f, payload_bytes, n_records), n_runs);
  }

  /// Address-tracked access: walk the rows [addr, addr + bytes) touches and
  /// charge each against the owning bank's open-row register. Rows map to
  /// banks round-robin (row-interleaved), so a sequential run activates all
  /// banks in turn and later activations overlap the other banks' transfers.
  void touch(std::uint64_t addr, std::uint64_t bytes) {
    if (bytes == 0) return;
    const auto row_bytes = static_cast<std::uint64_t>(cfg_.row_bytes);
    const int banks = std::min(std::max(cfg_.banks, 1), kMaxBanks);
    const double exposed_extra =
        std::max(0.0, cfg_.row_miss_cost() - cfg_.hidden_activation_window());
    cost_.bytes += static_cast<double>(bytes);
    cost_.cycles += static_cast<double>(bytes) / cfg_.bytes_per_cycle +
                    cfg_.request_latency;
    const std::uint64_t first_row = addr / row_bytes;
    const std::uint64_t last_row = (addr + bytes - 1) / row_bytes;
    bool first = true;
    for (std::uint64_t r = first_row; r <= last_row; ++r) {
      const auto bank = static_cast<std::size_t>(r % banks);
      const std::uint64_t lo = std::max(addr, r * row_bytes);
      const std::uint64_t hi = std::min(addr + bytes, (r + 1) * row_bytes);
      const double beats =
          std::ceil(static_cast<double>(hi - lo) / cfg_.bytes_per_cycle);
      if (open_row_[bank] == static_cast<std::int64_t>(r)) {
        cost_.row_hits += beats;
      } else {
        open_row_[bank] = static_cast<std::int64_t>(r);
        cost_.row_misses += 1;
        cost_.row_hits += std::max(0.0, beats - 1.0);
        // The first activation of the touch serializes with the request;
        // later ones overlap the other banks' transfers.
        cost_.cycles += first ? cfg_.row_miss_cost() : exposed_extra;
      }
      first = false;
    }
  }

 private:
  DramConfig cfg_;
  DramCost cost_;
  /// Open row per bank, -1 = closed. Fixed array: no per-access allocation.
  std::array<std::int64_t, kMaxBanks> open_row_{};
};

}  // namespace spikestream::arch
