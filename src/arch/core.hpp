// Cycle-level model of one Snitch worker core: a single-issue in-order RV32
// integer pipeline ("pseudo dual-issue" with the FPU), a decoupled FPU
// sequencer fed through a FIFO and expanded by the FREP hardware loop, and
// three stream semantic registers.
//
// Timing rules (the ones that matter for SpikeStream, per Zaruba et al.):
//  * 1 integer instruction issued per cycle; ALU results forward to the next
//    instruction; loads have one load-use bubble.
//  * TCDM accesses that lose bank arbitration retry the next cycle.
//  * Taken branches flush the fetch stage (configurable penalty, default 2).
//  * FP compute ops are pushed to the FPU queue and the integer pipe moves
//    on; the FPU issues at most one op per cycle, in order, stalling on FP
//    register RAW hazards (this is what makes a single-accumulator streamed
//    fadd chain run at II = fadd latency) and on empty SSR FIFOs.
//  * FREP pushes its body once; repetition happens inside the sequencer,
//    leaving the integer pipe free — the decoupling Section III-E exploits.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "arch/dma.hpp"
#include "arch/isa.hpp"
#include "arch/mem.hpp"
#include "arch/perf.hpp"
#include "arch/program.hpp"
#include "arch/ssr.hpp"

namespace spikestream::arch {

/// One executed instruction, for debugging/teaching traces.
struct TraceEntry {
  std::uint64_t cycle = 0;
  int core = 0;
  std::uint32_t pc = 0;
  Instr instr;
  bool fpu = false;  ///< issued by the FPU sequencer (vs the integer pipe)
};

/// FPU latency table (cycles until the result register is usable).
struct FpuTiming {
  int fadd = 2;   ///< also the II of a single-accumulator reduction
  int fmul = 3;
  int fmadd = 3;
  int fload = 2;  ///< fld -> first FP use
};

struct CoreConfig {
  FpuTiming fpu;
  int branch_penalty = 2;
  int load_use_latency = 2;      ///< cycles from lw issue to operand ready
  std::size_t fpu_queue_depth = 16;
};

/// Services a core needs from the cluster (barrier, icache, DMA).
struct ClusterServices {
  /// Register arrival (polling=false) or poll for release (polling=true);
  /// returns true once the barrier opened for this core.
  std::function<bool(int core_id, bool polling)> barrier_arrive;
  std::function<int(std::size_t pc)> icache_penalty;  ///< extra fetch cycles
  DmaEngine* dma = nullptr;
  int num_cores = 1;
};

class SnitchCore {
 public:
  SnitchCore(int core_id, const CoreConfig& cfg)
      : id_(core_id), cfg_(cfg), ssrs_{Ssr(true), Ssr(true), Ssr(false)} {}

  void load_program(const Program* p) {
    prog_ = p;
    reset();
  }

  void reset();

  /// True when the core halted, its FPU queue drained, and SSRs are idle.
  bool done() const;

  /// Advance one cycle. Order per cycle: FPU issue, SSR fetch, integer issue.
  void step(std::uint64_t cycle, Memory& mem, ClusterServices& svc);

  // Register access for test setup/inspection.
  std::uint32_t x(int i) const { return xreg_[static_cast<std::size_t>(i)]; }
  void set_x(int i, std::uint32_t v) {
    if (i != 0) xreg_[static_cast<std::size_t>(i)] = v;
  }
  double f(int i) const { return freg_[static_cast<std::size_t>(i)]; }
  void set_f(int i, double v) { freg_[static_cast<std::size_t>(i)] = v; }

  int id() const { return id_; }
  const PerfCounters& perf() const { return perf_; }
  PerfCounters& perf() { return perf_; }
  bool halted() const { return halted_; }

  /// Attach a trace sink; at most `limit` entries are recorded (0 = off).
  void set_trace(std::vector<TraceEntry>* sink, std::size_t limit) {
    trace_ = sink;
    trace_limit_ = limit;
  }

 private:
  struct FpuEntry {
    Instr body[8];
    int body_len = 1;
    std::uint32_t reps = 1;  ///< total repetitions of the body
    std::uint32_t rep = 0;   ///< current repetition
    int pos = 0;             ///< current instruction within the body
  };

  void step_int(std::uint64_t cycle, Memory& mem, ClusterServices& svc);
  void step_fpu(std::uint64_t cycle, Memory& mem);
  bool int_srcs_ready(const Instr& in, std::uint64_t cycle);
  bool fp_reg_busy(int reg) const {
    return pending_fp_writes_[static_cast<std::size_t>(reg)] > 0;
  }
  /// True while a queued-but-unissued FPU op still needs to *read* `reg`:
  /// the integer pipe must not overwrite it (WAR through the sequencer).
  bool fp_reg_read_pending(int reg) const {
    for (const FpuEntry& e : fpu_q_) {
      for (int i = 0; i < e.body_len; ++i) {
        const Instr& b = e.body[i];
        if (b.rs1 == reg || b.rs2 == reg ||
            (b.op == Op::kFmadd && b.rd == reg)) {
          return true;
        }
      }
    }
    return false;
  }

  int id_;
  CoreConfig cfg_;
  const Program* prog_ = nullptr;

  // integer pipeline state
  std::array<std::uint32_t, 32> xreg_{};
  std::array<std::uint64_t, 32> xready_{};  ///< cycle at which reg is usable
  std::size_t pc_ = 0;
  bool halted_ = true;
  std::uint64_t int_next_issue_ = 0;
  bool in_barrier_ = false;

  // FPU sequencer state
  std::deque<FpuEntry> fpu_q_;
  std::array<double, 32> freg_{};
  std::array<std::uint64_t, 32> fready_{};
  std::array<int, 32> pending_fp_writes_{};  ///< queued-but-unissued writers
  std::uint64_t fpu_next_issue_ = 0;

  std::array<Ssr, 3> ssrs_;
  bool ssr_enabled_ = false;
  DmaTransfer dma_stage_;  ///< staged kDma* operands until kDmaStart

  PerfCounters perf_;
  std::uint64_t halt_cycle_ = 0;
  std::vector<TraceEntry>* trace_ = nullptr;
  std::size_t trace_limit_ = 0;

  void record_trace(std::uint64_t cycle, std::size_t pc, const Instr& in,
                    bool fpu) {
    if (trace_ != nullptr && trace_->size() < trace_limit_) {
      trace_->push_back({cycle, id_, static_cast<std::uint32_t>(pc), in, fpu});
    }
  }

 public:
  Ssr& ssr(int i) { return ssrs_[static_cast<std::size_t>(i)]; }
  std::uint64_t halt_cycle() const { return halt_cycle_; }
};

}  // namespace spikestream::arch
