// Stream Semantic Register model. Each worker core has three SSRs mapped to
// FP registers f0..f2 while enabled. All three support <=4D affine streams;
// SSR0/SSR1 additionally support 1D indirect (gather) streams with 8/16/32-bit
// indices held in TCDM, as in Scheffler et al., "Sparse Stream Semantic
// Registers" (the extension SpikeStream builds on).
//
// Timing model: one data element per cycle per SSR, through a private TCDM
// port subject to bank arbitration. Indirect streams use a second private
// port for index words (64-bit, i.e. one fetch per 8/idx_bytes elements), so
// a conflict-free indirect stream also sustains 1 element/cycle. A 4-entry
// data FIFO decouples fetch from FPU consumption. Configuration writes land
// in a shadow register set; one pending stream may be queued behind the
// active one (`commit` fails if the shadow slot is occupied, stalling the
// integer core — the overlap mechanism Section III-E relies on).
#pragma once

#include <cstdint>
#include <deque>

#include "arch/isa.hpp"
#include "arch/mem.hpp"
#include "arch/perf.hpp"

namespace spikestream::arch {

/// Stream configuration (architectural + shadow copies are both this type).
struct SsrConfig {
  SsrMode mode = SsrMode::kAffineRead;
  Addr base = 0;
  std::uint32_t bounds[4] = {1, 1, 1, 1};   ///< trip counts, dim 0 innermost
  std::int32_t strides[4] = {8, 0, 0, 0};   ///< byte strides per dim
  Addr idx_base = 0;                        ///< indirect: index array base
  int idx_bytes = 2;                        ///< indirect: 1, 2 or 4
  std::uint32_t length = 0;                 ///< indirect/1D: element count
};

class Ssr {
 public:
  /// `indirect_capable` is true for SSR0/SSR1 only.
  explicit Ssr(bool indirect_capable = true)
      : indirect_capable_(indirect_capable) {}

  // --- configuration interface (driven by the integer core) ---------------
  SsrConfig& shadow() { return shadow_; }

  /// Activate the shadow config, or queue it behind the active stream.
  /// Returns false (caller must stall and retry) if the queue slot is taken.
  bool commit();

  bool active() const { return active_; }
  bool reading() const {
    return active_ && cfg_.mode != SsrMode::kAffineWrite;
  }
  bool writing() const {
    return active_ && cfg_.mode == SsrMode::kAffineWrite;
  }

  // --- data interface (driven by the FPU) ---------------------------------
  bool can_pop() const { return !fifo_.empty(); }
  double pop(PerfCounters& pc) {
    const double v = fifo_.front();
    fifo_.pop_front();
    ++popped_;
    ++pc.ssr_elems;
    maybe_finish();
    return v;
  }
  bool can_push() const { return wfifo_.size() < kFifoDepth; }
  void push(double v) {
    wfifo_.push_back(v);
    ++pushed_;
  }

  /// True once no stream is active and none is queued.
  bool fully_idle() const { return !active_ && !pending_valid_; }

  // --- per-cycle fetch/drain engine ----------------------------------------
  void step(Memory& mem);

  std::uint64_t conflict_cycles() const { return conflict_cycles_; }

 private:
  static constexpr std::size_t kFifoDepth = 4;

  void start(const SsrConfig& c);
  void maybe_finish();
  Addr affine_addr() const;
  bool advance_affine();

  bool indirect_capable_;
  SsrConfig cfg_;
  SsrConfig shadow_;
  SsrConfig pending_;
  bool pending_valid_ = false;
  bool active_ = false;

  std::uint32_t total_ = 0;    ///< elements in the active stream
  std::uint32_t fetched_ = 0;  ///< read streams: elements fetched into FIFO
  std::uint32_t popped_ = 0;   ///< read streams: elements consumed by the FPU
  std::uint32_t pushed_ = 0;   ///< write streams: elements produced by the FPU
  std::uint32_t drained_ = 0;  ///< write streams: elements stored to TCDM
  std::uint32_t idx_counters_[4] = {0, 0, 0, 0};

  // cached 64-bit index word for indirect streams
  std::uint64_t idx_word_ = 0;
  std::int64_t idx_word_slot_ = -1;

  std::deque<double> fifo_;   ///< read-stream data awaiting the FPU
  std::deque<double> wfifo_;  ///< write-stream data awaiting drain to TCDM
  std::uint64_t conflict_cycles_ = 0;
};

}  // namespace spikestream::arch
