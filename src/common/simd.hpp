// Runtime-dispatched host SIMD kernels for the three simulator hot loops:
// the CSR nonzero-byte scan (ifmap compression), the LIF membrane step, and
// the dense per-SIMD-group spike accumulate that feeds the schedule
// simulation. Each kernel has a scalar reference implementation plus AVX2 and
// AVX-512 variants compiled with function-level target attributes, so one
// portable binary carries every tier and picks the widest one the running CPU
// supports (probed once via cpuid).
//
// Bit-exactness contract: every tier of a kernel produces byte-identical
// output for identical input — the vector paths are lane-wise transcriptions
// of the scalar loop, never reassociations of it (tests/test_simd.cpp pins
// all tiers against the scalar one on randomized inputs). The LIF step fuses
// mem * alpha + (r * cur) with a real FMA in every tier (std::fmaf on the
// scalar path), so the arithmetic is identical whether the hardware runs
// vfmadd231ps or the libm fallback.
//
// `force_tier()` exists for tests and A/B profiling only; it clamps to what
// the CPU supports, so forcing kAvx512 on an AVX2 machine yields kAvx2.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace spikestream::common::simd {

enum class Tier {
  kScalar = 0,
  kAvx2 = 1,    ///< AVX2 + FMA
  kAvx512 = 2,  ///< AVX-512 F + BW
};

const char* tier_name(Tier t);

/// Widest tier the running CPU supports (probed once, cached).
Tier max_supported();

/// The tier kernels currently dispatch to: min(max_supported, forced).
Tier active();

/// Test/bench hook: pin dispatch to `t` (clamped to max_supported()).
/// Returns the tier actually in effect.
Tier force_tier(Tier t);

// --- kernels ----------------------------------------------------------------

/// Append the indices (offset `base`) of all nonzero bytes in `row[0..n)` to
/// `out`, in ascending order — the inner loop of CsrIfmap::encode_into. Any
/// nonzero byte counts as a spike, exactly like the scalar tail.
void append_nonzero_u8(const std::uint8_t* row, int n, std::uint16_t base,
                       std::vector<std::uint16_t>& out);

/// One LIF step over `n` neurons: v = fma(mem, alpha, r * cur); fired =
/// v >= v_th; v -= fired ? v_rst : 0. Writes spikes (0/1 bytes), updates
/// `mem` in place, returns the number of neurons that fired.
std::size_t lif_step(const float* cur, float* mem, std::uint8_t* spikes,
                     std::size_t n, float alpha, float r, float v_th,
                     float v_rst);

/// Per-SIMD-group spike counts over one dense output row: counts[g] =
/// sum(row[g * group .. min((g + 1) * group, c))) as a double (sums of
/// small integers — exact in every summation order, so vector paths may
/// reduce in any shape). The dense accumulate feeding the scheduler's
/// per-group task costs.
void group_spike_counts(const std::uint8_t* row, int c, int group, int groups,
                        double* counts);

// --- CRC32C checksum engine -------------------------------------------------
// The seal/verify primitive of the data-integrity subsystem
// (runtime/integrity.hpp): CRC32C (Castagnoli polynomial 0x1EDC6F41,
// reflected 0x82F63B78) over a byte buffer. Dispatched exactly like the
// kernels above, with its own tier ladder because the relevant ISA feature is
// SSE4.2's crc32 instruction, not the AVX vector width:
//
//  * kTable   — byte-at-a-time table reference (any CPU).
//  * kHw      — one _mm_crc32_u64 dependency chain, 8 bytes per step.
//  * kHw3     — three interleaved _mm_crc32_u64 chains over thirds of the
//    buffer (the crc32 instruction has 3-cycle latency / 1-cycle throughput,
//    so independent chains triple the sustained rate), recombined with a
//    GF(2) carryless shift — the same trick the wide AVX-512+VPCLMULQDQ
//    implementations build on.
//
// Every tier returns the identical checksum for identical input (the combine
// step is an exact algebraic identity, not an approximation); test_integrity
// pins all tiers against the table one on randomized buffers.

enum class CrcTier {
  kTable = 0,  ///< portable table-driven reference
  kHw = 1,     ///< SSE4.2 crc32 instruction, single stream
  kHw3 = 2,    ///< SSE4.2 crc32, three interleaved streams + GF(2) combine
};

const char* crc_tier_name(CrcTier t);

/// Widest CRC tier the running CPU supports (probed once, cached).
CrcTier crc_max_supported();

/// The tier crc32c() currently dispatches to: min(crc_max_supported, forced).
CrcTier crc_active();

/// Test/bench hook: pin CRC dispatch to `t` (clamped to crc_max_supported()).
/// Returns the tier actually in effect.
CrcTier force_crc_tier(CrcTier t);

/// CRC32C of `data[0..n)`, chained: pass a previous crc32c() result as
/// `seed` to checksum a logical concatenation incrementally
/// (crc32c(b, nb, crc32c(a, na)) == crc32c(a||b)). Seed 0 starts fresh.
std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed = 0);

}  // namespace spikestream::common::simd
