// Error-handling primitives used across SpikeStream.
//
// SPK_CHECK: recoverable precondition / invariant violation -> throws
// spikestream::Error with file:line context. Used at API boundaries.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace spikestream {

/// Exception type thrown on violated preconditions or invariants.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_check_failure(const char* cond, const char* file,
                                             int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << cond;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

}  // namespace detail
}  // namespace spikestream

/// Throws spikestream::Error if `cond` is false. `msg` is streamed, e.g.
/// SPK_CHECK(n > 0, "n=" << n).
#define SPK_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::ostringstream spk_check_os_;                                   \
      spk_check_os_ << msg;                                               \
      ::spikestream::detail::throw_check_failure(#cond, __FILE__,         \
                                                 __LINE__,                \
                                                 spk_check_os_.str());    \
    }                                                                     \
  } while (false)

/// Cheap assert for hot paths; compiled out in release unless SPK_PARANOID.
#if defined(SPK_PARANOID)
#define SPK_DCHECK(cond, msg) SPK_CHECK(cond, msg)
#else
#define SPK_DCHECK(cond, msg) \
  do {                        \
  } while (false)
#endif
