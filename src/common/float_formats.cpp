#include "common/float_formats.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

namespace spikestream::common {

const char* fp_name(FpFormat f) {
  switch (f) {
    case FpFormat::FP64: return "FP64";
    case FpFormat::FP32: return "FP32";
    case FpFormat::FP16: return "FP16";
    case FpFormat::FP8: return "FP8";
  }
  return "?";
}

namespace {

std::uint32_t f32_bits(float x) { return std::bit_cast<std::uint32_t>(x); }

// Generic float32 -> small-float conversion with round-to-nearest-even.
// exp_bits/man_bits describe the target; `ieee_special` selects whether the
// format has inf/NaN encodings (E5M2, FP16) or saturates (E4M3).
std::uint32_t narrow_from_f32(float x, int exp_bits, int man_bits,
                              bool ieee_special) {
  const int total = 1 + exp_bits + man_bits;
  const std::uint32_t sign_mask = 1u << (total - 1);
  const int bias = (1 << (exp_bits - 1)) - 1;
  const std::uint32_t exp_max = (1u << exp_bits) - 1;

  const std::uint32_t u = f32_bits(x);
  const std::uint32_t sign = (u >> 31) ? sign_mask : 0u;
  const int e32 = static_cast<int>((u >> 23) & 0xFF);
  std::uint32_t m32 = u & 0x7FFFFFu;

  // NaN / Inf in the source.
  if (e32 == 0xFF) {
    if (m32 != 0) {  // NaN
      if (ieee_special) return sign | (exp_max << man_bits) | 1u;
      return sign | ((exp_max << man_bits) | ((1u << man_bits) - 1));  // E4M3 NaN = all ones
    }
    if (ieee_special) return sign | (exp_max << man_bits);  // Inf
    // E4M3 saturates to max finite (S.1111.110 per OCP spec; all-ones is NaN).
    return sign | ((exp_max << man_bits) | ((1u << man_bits) - 2));
  }

  // Unbiased exponent of source (treat zero/subnormal-of-f32 as zero input;
  // f32 subnormals are below every representable target subnormal anyway).
  if (e32 == 0) return sign;

  int e_unb = e32 - 127;
  // Target exponent field value before subnormal handling.
  int e_t = e_unb + bias;

  // Mantissa with implicit leading one, in a 24-bit field.
  std::uint32_t mant = (1u << 23) | m32;
  int shift = 23 - man_bits;  // bits to drop for a normal result

  if (e_t <= 0) {
    // Subnormal in the target: shift further right by 1-e_t.
    shift += 1 - e_t;
    e_t = 0;
    if (shift > 31) return sign;  // underflow to zero (even after rounding)
  }

  // Round to nearest even on the dropped bits.
  const std::uint32_t halfway = 1u << (shift - 1);
  const std::uint32_t dropped = mant & ((1u << shift) - 1);
  std::uint32_t kept = mant >> shift;
  if (dropped > halfway || (dropped == halfway && (kept & 1u))) kept += 1;

  // Rounding may carry into the exponent.
  if (kept >> (man_bits + 1)) {
    kept >>= 1;
    e_t += 1;
  } else if (e_t == 0 && (kept >> man_bits)) {
    // Subnormal rounded up into the smallest normal.
    e_t = 1;
    kept &= (1u << man_bits) - 1;
    return sign | (static_cast<std::uint32_t>(e_t) << man_bits) | kept;
  }

  if (e_t >= static_cast<int>(exp_max)) {
    if (ieee_special) {
      if (e_t > static_cast<int>(exp_max) ||
          (e_t == static_cast<int>(exp_max))) {
        return sign | (exp_max << man_bits);  // overflow -> inf
      }
    } else {
      // E4M3: exp_max with mantissa != all-ones is a normal value; only
      // saturate when the value exceeds max finite.
      if (e_t > static_cast<int>(exp_max)) {
        return sign | (exp_max << man_bits) | ((1u << man_bits) - 2);
      }
      std::uint32_t m = kept & ((1u << man_bits) - 1);
      if (e_t == static_cast<int>(exp_max) && m == ((1u << man_bits) - 1)) {
        // Would alias the NaN encoding: clamp to max finite.
        m = (1u << man_bits) - 2;
      }
      return sign | (exp_max << man_bits) | m;
    }
  }

  std::uint32_t e_field = static_cast<std::uint32_t>(e_t);
  std::uint32_t m_field = kept & ((1u << man_bits) - 1);
  if (e_t == 0) {
    // kept already holds the subnormal mantissa (no implicit bit).
    m_field = kept;
    if (m_field >> man_bits) {  // carried into normal range
      e_field = 1;
      m_field &= (1u << man_bits) - 1;
    }
  }
  return sign | (e_field << man_bits) | m_field;
}

// Generic small-float -> float32.
float widen_to_f32(std::uint32_t b, int exp_bits, int man_bits,
                   bool ieee_special) {
  const int total = 1 + exp_bits + man_bits;
  const int bias = (1 << (exp_bits - 1)) - 1;
  const std::uint32_t exp_max = (1u << exp_bits) - 1;

  const std::uint32_t sign = (b >> (total - 1)) & 1u;
  const std::uint32_t e = (b >> man_bits) & exp_max;
  const std::uint32_t m = b & ((1u << man_bits) - 1);

  if (e == exp_max) {
    if (ieee_special) {
      if (m == 0) {
        return sign ? -std::numeric_limits<float>::infinity()
                    : std::numeric_limits<float>::infinity();
      }
      return std::numeric_limits<float>::quiet_NaN();
    }
    if (m == ((1u << man_bits) - 1)) {
      return std::numeric_limits<float>::quiet_NaN();  // E4M3 NaN
    }
    // fall through: E4M3 exp_max with m != all-ones is a normal number.
  }

  if (e == 0) {
    if (m == 0) return sign ? -0.0f : 0.0f;
    // Subnormal: m * 2^(1-bias-man_bits)
    float v = std::ldexp(static_cast<float>(m), 1 - bias - man_bits);
    return sign ? -v : v;
  }

  const float frac = 1.0f + static_cast<float>(m) / static_cast<float>(1u << man_bits);
  float v = std::ldexp(frac, static_cast<int>(e) - bias);
  return sign ? -v : v;
}

}  // namespace

std::uint16_t fp32_to_fp16_bits(float x) {
  return static_cast<std::uint16_t>(narrow_from_f32(x, 5, 10, true));
}

float fp16_bits_to_fp32(std::uint16_t h) { return widen_to_f32(h, 5, 10, true); }

std::uint8_t fp32_to_fp8_e4m3_bits(float x) {
  return static_cast<std::uint8_t>(narrow_from_f32(x, 4, 3, false));
}

float fp8_e4m3_bits_to_fp32(std::uint8_t b) {
  return widen_to_f32(b, 4, 3, false);
}

std::uint8_t fp32_to_fp8_e5m2_bits(float x) {
  return static_cast<std::uint8_t>(narrow_from_f32(x, 5, 2, true));
}

float fp8_e5m2_bits_to_fp32(std::uint8_t b) {
  return widen_to_f32(b, 5, 2, true);
}

float quantize(float x, FpFormat f) {
  switch (f) {
    case FpFormat::FP64:
    case FpFormat::FP32:
      return x;
    case FpFormat::FP16:
      return fp16_bits_to_fp32(fp32_to_fp16_bits(x));
    case FpFormat::FP8:
      return fp8_e4m3_bits_to_fp32(fp32_to_fp8_e4m3_bits(x));
  }
  return x;
}

}  // namespace spikestream::common
