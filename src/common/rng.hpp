// Deterministic, fast PRNG (xoshiro256**) plus the distributions the project
// needs. We avoid <random> engines for reproducibility across libstdc++
// versions: all published numbers must be re-derivable bit-for-bit.
#pragma once

#include <cmath>
#include <cstdint>

namespace spikestream::common {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) {
    // splitmix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& s : state_) {
      z += 0x9E3779B97F4A7C15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
      x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
      s = x ^ (x >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).
  std::uint64_t uniform_u64(std::uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box-Muller (no cached second value: determinism
  /// beats the factor-2 saving here).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Bernoulli trial.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace spikestream::common
