// Streaming statistics (Welford) and small helpers used by the benchmark
// harnesses to report mean / standard deviation over an input batch, matching
// the paper's "average and standard deviation over 128 frames" methodology.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace spikestream::common {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merge another accumulator (parallel Welford combine).
  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double d = o.mean_ - mean_;
    const auto n = static_cast<double>(n_ + o.n_);
    m2_ += o.m2_ + d * d * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / n;
    mean_ += d * static_cast<double>(o.n_) / n;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile over a stored sample (used by ablation benches).
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace spikestream::common
