// Streaming statistics (Welford), an allocation-free log-bucketed latency
// histogram (p50/p95/p99 for the serving runtime), and small helpers used by
// the benchmark harnesses to report mean / standard deviation over an input
// batch, matching the paper's "average and standard deviation over 128
// frames" methodology.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace spikestream::common {

/// Single-pass mean/variance/min/max accumulator (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merge another accumulator (parallel Welford combine).
  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const double d = o.mean_ - mean_;
    const auto n = static_cast<double>(n_ + o.n_);
    m2_ += o.m2_ + d * d * static_cast<double>(n_) *
                       static_cast<double>(o.n_) / n;
    mean_ += d * static_cast<double>(o.n_) / n;
    n_ += o.n_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-footprint log-bucketed histogram (HDR style): each power-of-two
/// octave is subdivided into 16 linear sub-buckets, so a recorded value is
/// off by at most 1/16 (~6%) of itself at percentile-query time — plenty for
/// p50/p95/p99 tail-latency tracking — while add() touches one counter in a
/// std::array and never allocates. Values are non-negative (microseconds in
/// the serving runtime); single-writer, copyable, mergeable.
class LogHistogram {
 public:
  static constexpr int kSubBits = 4;  ///< 16 linear sub-buckets per octave
  static constexpr int kSub = 1 << kSubBits;
  static constexpr int kMaxOctave = 39;  ///< values clamp at 2^40 - 1
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>((kMaxOctave - kSubBits + 2) << kSubBits);

  void add(double x) {
    const std::uint64_t v =
        x <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(x));
    ++buckets_[bucket_of(v)];
    ++n_;
    sum_ += x;
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Value at percentile `p` in [0, 100]: the representative (midpoint) of
  /// the bucket holding the ceil(p/100 * count)-th smallest sample.
  double percentile(double p) const {
    if (n_ == 0) return 0.0;
    const double want = p / 100.0 * static_cast<double>(n_);
    const auto target = static_cast<std::size_t>(
        std::min(static_cast<double>(n_), std::max(1.0, std::ceil(want))));
    std::size_t seen = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
      seen += buckets_[b];
      if (seen >= target) return representative(b);
    }
    return max_;
  }

  void merge(const LogHistogram& o) {
    for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += o.buckets_[b];
    n_ += o.n_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  static std::size_t bucket_of(std::uint64_t v) {
    if (v < kSub) return static_cast<std::size_t>(v);
    const int msb =
        std::min(kMaxOctave, static_cast<int>(std::bit_width(v)) - 1);
    const int shift = msb - kSubBits;
    const auto sub = static_cast<std::size_t>(
        (std::min(v, (std::uint64_t{1} << (msb + 1)) - 1) >> shift) &
        (kSub - 1));
    return (static_cast<std::size_t>(msb - kSubBits + 1) << kSubBits) + sub;
  }

  /// Midpoint of bucket `b` (inverse of bucket_of's range mapping).
  static double representative(std::size_t b) {
    if (b < kSub) return static_cast<double>(b);
    const int msb = static_cast<int>(b >> kSubBits) + kSubBits - 1;
    const std::uint64_t sub = b & (kSub - 1);
    const int shift = msb - kSubBits;
    const std::uint64_t lo = (std::uint64_t{1} << msb) + (sub << shift);
    return static_cast<double>(lo) +
           0.5 * static_cast<double>(std::uint64_t{1} << shift);
  }

  std::array<std::uint64_t, kBuckets> buckets_{};
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Exact percentile over a stored sample (used by ablation benches).
inline double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  const double idx = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const auto hi = std::min(lo + 1, xs.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace spikestream::common
