// Non-owning, non-allocating callable reference. The hot execution paths
// (worker pool jobs, shard fan-out) must not touch the heap in steady state,
// which rules out std::function for capturing lambdas; a FunctionRef stores
// one pointer to the caller's callable plus a thunk and is trivially
// copyable. The referenced callable must outlive every invocation — callers
// pass stack lambdas whose scope encloses the parallel region.
#pragma once

#include <type_traits>
#include <utility>

namespace spikestream::common {

template <typename Sig>
class FunctionRef;

template <typename R, typename... Args>
class FunctionRef<R(Args...)> {
 public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor)
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              std::forward<Args>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, std::forward<Args>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

}  // namespace spikestream::common
