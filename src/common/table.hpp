// Minimal ASCII table printer: the figure-reproduction benches print the same
// rows/series the paper plots, as aligned text tables.
#pragma once

#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

namespace spikestream::common {

/// Column-aligned ASCII table. Usage: set_header(...), add_row(...), print().
class Table {
 public:
  explicit Table(std::string title = "") : title_(std::move(title)) {}

  void set_header(std::vector<std::string> cols) { header_ = std::move(cols); }

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  /// Format a double with the given precision.
  static std::string num(double v, int prec = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(prec) << v;
    return os.str();
  }

  /// Format "mean ± std".
  static std::string pm(double mean, double std, int prec = 2) {
    return num(mean, prec) + " +- " + num(std, prec);
  }

  /// Format a percentage.
  static std::string pct(double frac, int prec = 1) {
    return num(frac * 100.0, prec) + "%";
  }

  void print(std::ostream& os = std::cout) const {
    std::vector<std::size_t> widths(header_.size(), 0);
    auto grow = [&](const std::vector<std::string>& cells) {
      for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i >= widths.size()) widths.resize(i + 1, 0);
        widths[i] = std::max(widths[i], cells[i].size());
      }
    };
    grow(header_);
    for (const auto& r : rows_) grow(r);

    auto line = [&](const std::vector<std::string>& cells) {
      os << "| ";
      for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string& c = i < cells.size() ? cells[i] : std::string();
        os << std::left << std::setw(static_cast<int>(widths[i])) << c
           << " | ";
      }
      os << '\n';
    };
    auto rule = [&] {
      os << '+';
      for (auto w : widths) os << std::string(w + 2, '-') << '+';
      os << '\n';
    };

    if (!title_.empty()) os << "== " << title_ << " ==\n";
    rule();
    line(header_);
    rule();
    for (const auto& r : rows_) line(r);
    rule();
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spikestream::common
