// Software models of the narrow floating-point formats used by the Snitch
// SIMD FPU: IEEE binary16 (FP16), and the two common 8-bit formats E4M3 and
// E5M2 (FP8). Conversions use round-to-nearest-even, matching FPnew.
//
// The kernels quantize weights once into the chosen format; functional results
// are therefore computed on format-faithful values.
#pragma once

#include <cstdint>

namespace spikestream::common {

/// Floating-point formats supported by the modeled 64-bit SIMD FPU.
enum class FpFormat { FP64, FP32, FP16, FP8 };

/// Number of SIMD lanes the 64-bit FPU datapath provides for a format.
constexpr int simd_lanes(FpFormat f) {
  switch (f) {
    case FpFormat::FP64: return 1;
    case FpFormat::FP32: return 2;
    case FpFormat::FP16: return 4;
    case FpFormat::FP8: return 8;
  }
  return 1;
}

/// Storage size of one element in bytes.
constexpr int fp_bytes(FpFormat f) {
  switch (f) {
    case FpFormat::FP64: return 8;
    case FpFormat::FP32: return 4;
    case FpFormat::FP16: return 2;
    case FpFormat::FP8: return 1;
  }
  return 8;
}

const char* fp_name(FpFormat f);

/// IEEE 754 binary16 <-> binary32 conversions (round-to-nearest-even).
std::uint16_t fp32_to_fp16_bits(float x);
float fp16_bits_to_fp32(std::uint16_t h);

/// FP8 E4M3 (1-4-3, bias 7, saturating, no infinities; max finite 448).
std::uint8_t fp32_to_fp8_e4m3_bits(float x);
float fp8_e4m3_bits_to_fp32(std::uint8_t b);

/// FP8 E5M2 (1-5-2, bias 15, IEEE-like with inf/NaN; max finite 57344).
std::uint8_t fp32_to_fp8_e5m2_bits(float x);
float fp8_e5m2_bits_to_fp32(std::uint8_t b);

/// Round-trips a value through the given format (identity for FP32/FP64).
/// FP8 uses E4M3, the weight format assumed by the paper's FP8 runs.
float quantize(float x, FpFormat f);

}  // namespace spikestream::common
