#include "common/simd.hpp"

#include <atomic>
#include <bit>
#include <cmath>
#include <cstring>

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define SPIKESTREAM_X86_SIMD 1
#include <immintrin.h>
#endif

namespace spikestream::common::simd {

const char* tier_name(Tier t) {
  switch (t) {
    case Tier::kScalar: return "scalar";
    case Tier::kAvx2: return "avx2";
    case Tier::kAvx512: return "avx512";
  }
  return "?";
}

namespace {

Tier probe_max_supported() {
#ifdef SPIKESTREAM_X86_SIMD
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512bw") &&
      __builtin_cpu_supports("avx512vl")) {
    return Tier::kAvx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return Tier::kAvx2;
  }
#endif
  return Tier::kScalar;
}

/// Forced tier, or -1 when dispatch follows the CPU probe.
std::atomic<int> g_forced{-1};

}  // namespace

Tier max_supported() {
  static const Tier t = probe_max_supported();
  return t;
}

Tier active() {
  const int f = g_forced.load(std::memory_order_relaxed);
  if (f < 0) return max_supported();
  return static_cast<int>(max_supported()) < f
             ? max_supported()
             : static_cast<Tier>(f);
}

Tier force_tier(Tier t) {
  g_forced.store(static_cast<int>(t), std::memory_order_relaxed);
  return active();
}

// ---------------------------------------------------------------------------
// Nonzero-byte scan (CSR ifmap encode inner loop)
// ---------------------------------------------------------------------------

namespace {

/// Portable word-at-a-time scan: eight channels tested per 64-bit load, so
/// fully-silent channel octets cost one load and one branch. Any nonzero
/// byte counts as a spike (same contract as the vector tiers and the tail).
void scan_scalar(const std::uint8_t* row, int n, std::uint16_t base,
                 std::vector<std::uint16_t>& out) {
  int ch = 0;
  if constexpr (std::endian::native == std::endian::little) {
    constexpr std::uint64_t k7f = 0x7f7f7f7f7f7f7f7full;
    constexpr std::uint64_t k80 = 0x8080808080808080ull;
    for (; ch + 8 <= n; ch += 8) {
      std::uint64_t word;
      std::memcpy(&word, row + ch, sizeof(word));
      // Bit 7 of each byte of `nz` is set iff that byte of `word` is nonzero.
      std::uint64_t nz = (((word & k7f) + k7f) | word) & k80;
      while (nz != 0) {
        const int lane = std::countr_zero(nz) >> 3;
        out.push_back(static_cast<std::uint16_t>(base + ch + lane));
        nz &= nz - 1;
      }
    }
  }
  for (; ch < n; ++ch) {
    if (row[ch]) out.push_back(static_cast<std::uint16_t>(base + ch));
  }
}

#ifdef SPIKESTREAM_X86_SIMD

__attribute__((target("avx2"))) void scan_avx2(
    const std::uint8_t* row, int n, std::uint16_t base,
    std::vector<std::uint16_t>& out) {
  const __m256i zero = _mm256_setzero_si256();
  int ch = 0;
  for (; ch + 32 <= n; ch += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + ch));
    // movemask of (v == 0) inverted = one bit per nonzero byte, in order.
    std::uint32_t nz = ~static_cast<std::uint32_t>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(v, zero)));
    while (nz != 0) {
      const int lane = std::countr_zero(nz);
      out.push_back(static_cast<std::uint16_t>(base + ch + lane));
      nz &= nz - 1;
    }
  }
  scan_scalar(row + ch, n - ch, static_cast<std::uint16_t>(base + ch), out);
}

__attribute__((target("avx512f,avx512bw"))) void scan_avx512(
    const std::uint8_t* row, int n, std::uint16_t base,
    std::vector<std::uint16_t>& out) {
  int ch = 0;
  for (; ch + 64 <= n; ch += 64) {
    const __m512i v =
        _mm512_loadu_si512(reinterpret_cast<const void*>(row + ch));
    // test(v, v) sets one mask bit per nonzero byte, in order.
    std::uint64_t nz = _mm512_test_epi8_mask(v, v);
    while (nz != 0) {
      const int lane = std::countr_zero(nz);
      out.push_back(static_cast<std::uint16_t>(base + ch + lane));
      nz &= nz - 1;
    }
  }
  scan_scalar(row + ch, n - ch, static_cast<std::uint16_t>(base + ch), out);
}

#endif  // SPIKESTREAM_X86_SIMD

}  // namespace

void append_nonzero_u8(const std::uint8_t* row, int n, std::uint16_t base,
                       std::vector<std::uint16_t>& out) {
#ifdef SPIKESTREAM_X86_SIMD
  switch (active()) {
    case Tier::kAvx512: scan_avx512(row, n, base, out); return;
    case Tier::kAvx2: scan_avx2(row, n, base, out); return;
    case Tier::kScalar: break;
  }
#endif
  scan_scalar(row, n, base, out);
}

// ---------------------------------------------------------------------------
// LIF membrane step
// ---------------------------------------------------------------------------

namespace {

/// Scalar tier. std::fmaf is the IEEE fused multiply-add, bit-identical to
/// the vfmadd lanes of the vector tiers whatever the libm fallback path.
std::size_t lif_scalar(const float* cur, float* mem, std::uint8_t* spikes,
                       std::size_t n, float alpha, float r, float v_th,
                       float v_rst) {
  std::size_t fired_total = 0;
  for (std::size_t i = 0; i < n; ++i) {
    float v = std::fmaf(mem[i], alpha, r * cur[i]);
    const bool fired = v >= v_th;
    spikes[i] = fired;
    v -= fired ? v_rst : 0.0f;
    mem[i] = v;
    fired_total += fired;
  }
  return fired_total;
}

#ifdef SPIKESTREAM_X86_SIMD

__attribute__((target("avx2,fma"))) std::size_t lif_avx2(
    const float* cur, float* mem, std::uint8_t* spikes, std::size_t n,
    float alpha, float r, float v_th, float v_rst) {
  const __m256 va = _mm256_set1_ps(alpha);
  const __m256 vr = _mm256_set1_ps(r);
  const __m256 vth = _mm256_set1_ps(v_th);
  const __m256 vrst = _mm256_set1_ps(v_rst);
  std::size_t fired_total = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m256 v = _mm256_fmadd_ps(_mm256_loadu_ps(mem + i), va,
                               _mm256_mul_ps(vr, _mm256_loadu_ps(cur + i)));
    const __m256 ge = _mm256_cmp_ps(v, vth, _CMP_GE_OQ);
    v = _mm256_sub_ps(v, _mm256_and_ps(ge, vrst));
    _mm256_storeu_ps(mem + i, v);
    const unsigned bits =
        static_cast<unsigned>(_mm256_movemask_ps(ge)) & 0xffu;
    for (int j = 0; j < 8; ++j) spikes[i + j] = (bits >> j) & 1u;
    fired_total += static_cast<std::size_t>(std::popcount(bits));
  }
  return fired_total +
         lif_scalar(cur + i, mem + i, spikes + i, n - i, alpha, r, v_th,
                    v_rst);
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) std::size_t lif_avx512(
    const float* cur, float* mem, std::uint8_t* spikes, std::size_t n,
    float alpha, float r, float v_th, float v_rst) {
  const __m512 va = _mm512_set1_ps(alpha);
  const __m512 vr = _mm512_set1_ps(r);
  const __m512 vth = _mm512_set1_ps(v_th);
  const __m512 vrst = _mm512_set1_ps(v_rst);
  std::size_t fired_total = 0;
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    __m512 v = _mm512_fmadd_ps(_mm512_loadu_ps(mem + i), va,
                               _mm512_mul_ps(vr, _mm512_loadu_ps(cur + i)));
    const __mmask16 ge = _mm512_cmp_ps_mask(v, vth, _CMP_GE_OQ);
    v = _mm512_mask_sub_ps(v, ge, v, vrst);
    _mm512_storeu_ps(mem + i, v);
    // One 0/1 byte per mask bit, in lane order.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(spikes + i),
                     _mm_maskz_set1_epi8(ge, 1));
    fired_total += static_cast<std::size_t>(
        std::popcount(static_cast<unsigned>(ge)));
  }
  return fired_total +
         lif_scalar(cur + i, mem + i, spikes + i, n - i, alpha, r, v_th,
                    v_rst);
}

#endif  // SPIKESTREAM_X86_SIMD

}  // namespace

std::size_t lif_step(const float* cur, float* mem, std::uint8_t* spikes,
                     std::size_t n, float alpha, float r, float v_th,
                     float v_rst) {
#ifdef SPIKESTREAM_X86_SIMD
  switch (active()) {
    case Tier::kAvx512:
      return lif_avx512(cur, mem, spikes, n, alpha, r, v_th, v_rst);
    case Tier::kAvx2:
      return lif_avx2(cur, mem, spikes, n, alpha, r, v_th, v_rst);
    case Tier::kScalar: break;
  }
#endif
  return lif_scalar(cur, mem, spikes, n, alpha, r, v_th, v_rst);
}

// ---------------------------------------------------------------------------
// Per-SIMD-group spike accumulate (scheduler task-cost feed)
// ---------------------------------------------------------------------------
// Sums of u8 values are exact small integers in double, so vector tiers are
// free to reduce in any shape — every tier produces identical counts.

namespace {

void groups_scalar(const std::uint8_t* row, int c, int group, int groups,
                   double* counts) {
  for (int g = 0; g < groups; ++g) {
    const int lo = g * group;
    const int hi = lo + group < c ? lo + group : c;
    double n = 0;
    for (int ch = lo; ch < hi; ++ch) n += row[ch];
    counts[g] = n;
  }
}

#ifdef SPIKESTREAM_X86_SIMD

/// Full-range-safe sum of `len` bytes (psadbw against zero).
__attribute__((target("avx2"))) std::uint64_t sum_u8_avx2(
    const std::uint8_t* p, int len) {
  const __m256i zero = _mm256_setzero_si256();
  __m256i acc = zero;
  int i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p + i));
    acc = _mm256_add_epi64(acc, _mm256_sad_epu8(v, zero));
  }
  std::uint64_t lanes[4];
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), acc);
  std::uint64_t s = lanes[0] + lanes[1] + lanes[2] + lanes[3];
  for (; i < len; ++i) s += p[i];
  return s;
}

/// Groups of 4 bytes: 8 group sums per 32-byte load via the maddubs + madd
/// widening chain (pair sums to u16, pair-of-pair sums to u32, all within
/// 32-bit boundaries, so lane j is exactly bytes [4j, 4j + 4)).
__attribute__((target("avx2"))) void groups4_avx2(const std::uint8_t* row,
                                                  int groups, double* counts) {
  const __m256i ones8 = _mm256_set1_epi8(1);
  const __m256i ones16 = _mm256_set1_epi16(1);
  int g = 0;
  for (; g + 8 <= groups; g += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + g * 4));
    const __m256i s32 =
        _mm256_madd_epi16(_mm256_maddubs_epi16(v, ones8), ones16);
    _mm256_storeu_pd(counts + g,
                     _mm256_cvtepi32_pd(_mm256_castsi256_si128(s32)));
    _mm256_storeu_pd(counts + g + 4,
                     _mm256_cvtepi32_pd(_mm256_extracti128_si256(s32, 1)));
  }
  for (; g < groups; ++g) {
    const std::uint8_t* p = row + g * 4;
    counts[g] = static_cast<double>(p[0]) + p[1] + p[2] + p[3];
  }
}

/// Groups of 8 bytes: psadbw sums each 8-byte half directly.
__attribute__((target("avx2"))) void groups8_avx2(const std::uint8_t* row,
                                                  int groups, double* counts) {
  const __m256i zero = _mm256_setzero_si256();
  int g = 0;
  for (; g + 4 <= groups; g += 4) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + g * 8));
    const __m256i s64 = _mm256_sad_epu8(v, zero);
    std::uint64_t lanes[4];
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lanes), s64);
    counts[g] = static_cast<double>(lanes[0]);
    counts[g + 1] = static_cast<double>(lanes[1]);
    counts[g + 2] = static_cast<double>(lanes[2]);
    counts[g + 3] = static_cast<double>(lanes[3]);
  }
  for (; g < groups; ++g) {
    std::uint64_t s = 0;
    const std::uint8_t* p = row + g * 8;
    for (int j = 0; j < 8; ++j) s += p[j];
    counts[g] = static_cast<double>(s);
  }
}

__attribute__((target("avx2"))) void groups_avx2(const std::uint8_t* row,
                                                 int c, int group, int groups,
                                                 double* counts) {
  // A partial trailing group falls back to the scalar loop for that group.
  const int full = c / group;
  const int vec_groups = full < groups ? full : groups;
  if (group == 4) {
    groups4_avx2(row, vec_groups, counts);
  } else if (group == 8) {
    groups8_avx2(row, vec_groups, counts);
  } else if (group >= 16 && group % 8 == 0) {
    for (int g = 0; g < vec_groups; ++g) {
      counts[g] = static_cast<double>(sum_u8_avx2(row + g * group, group));
    }
  } else {
    groups_scalar(row, c, group, groups, counts);
    return;
  }
  for (int g = vec_groups; g < groups; ++g) {
    const int lo = g * group;
    const int hi = lo + group < c ? lo + group : c;
    double n = 0;
    for (int ch = lo; ch < hi; ++ch) n += row[ch];
    counts[g] = n;
  }
}

__attribute__((target("avx512f,avx512bw"))) void groups_avx512(
    const std::uint8_t* row, int c, int group, int groups, double* counts) {
  const int full = c / group;
  const int vec_groups = full < groups ? full : groups;
  if (group == 8) {
    const __m512i zero = _mm512_setzero_si512();
    int g = 0;
    for (; g + 8 <= vec_groups; g += 8) {
      const __m512i v =
          _mm512_loadu_si512(reinterpret_cast<const void*>(row + g * 8));
      const __m512i s64 = _mm512_sad_epu8(v, zero);
      std::uint64_t lanes[8];
      _mm512_storeu_si512(reinterpret_cast<void*>(lanes), s64);
      for (int j = 0; j < 8; ++j) {
        counts[g + j] = static_cast<double>(lanes[j]);
      }
    }
    for (; g < vec_groups; ++g) {
      std::uint64_t s = 0;
      const std::uint8_t* p = row + g * 8;
      for (int j = 0; j < 8; ++j) s += p[j];
      counts[g] = static_cast<double>(s);
    }
    for (g = vec_groups; g < groups; ++g) {
      const int lo = g * group;
      const int hi = lo + group < c ? lo + group : c;
      double n = 0;
      for (int ch = lo; ch < hi; ++ch) n += row[ch];
      counts[g] = n;
    }
    return;
  }
  // Other widths reuse the AVX2 shapes (already fast; AVX-512 CPUs run them).
  groups_avx2(row, c, group, groups, counts);
}

#endif  // SPIKESTREAM_X86_SIMD

}  // namespace

void group_spike_counts(const std::uint8_t* row, int c, int group, int groups,
                        double* counts) {
  if (groups <= 0) return;
#ifdef SPIKESTREAM_X86_SIMD
  switch (active()) {
    case Tier::kAvx512: groups_avx512(row, c, group, groups, counts); return;
    case Tier::kAvx2: groups_avx2(row, c, group, groups, counts); return;
    case Tier::kScalar: break;
  }
#endif
  groups_scalar(row, c, group, groups, counts);
}

// ---------------------------------------------------------------------------
// CRC32C checksum engine (runtime/integrity seal/verify primitive)
// ---------------------------------------------------------------------------

const char* crc_tier_name(CrcTier t) {
  switch (t) {
    case CrcTier::kTable: return "table";
    case CrcTier::kHw: return "sse42";
    case CrcTier::kHw3: return "sse42x3";
  }
  return "?";
}

namespace {

CrcTier probe_crc_max_supported() {
#ifdef SPIKESTREAM_X86_SIMD
  if (__builtin_cpu_supports("sse4.2")) {
    return CrcTier::kHw3;  // kHw3 needs nothing beyond the crc32 instruction
  }
#endif
  return CrcTier::kTable;
}

/// Forced CRC tier, or -1 when dispatch follows the CPU probe.
std::atomic<int> g_crc_forced{-1};

/// Reflected CRC32C polynomial.
constexpr std::uint32_t kCrc32cPoly = 0x82F63B78u;

struct Crc32cTable {
  std::uint32_t t[256];
  Crc32cTable() {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? (c >> 1) ^ kCrc32cPoly : c >> 1;
      }
      t[i] = c;
    }
  }
};

const std::uint32_t* crc32c_table() {
  static const Crc32cTable table;
  return table.t;
}

/// Table tier on the *raw* (pre-inverted) register value.
std::uint32_t crc_table_raw(std::uint32_t crc, const std::uint8_t* p,
                            std::size_t n) {
  const std::uint32_t* t = crc32c_table();
  for (std::size_t i = 0; i < n; ++i) {
    crc = t[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return crc;
}

// GF(2) carryless shift: advance a raw CRC register as if `len` zero bytes
// followed (zlib's crc32_combine operator, transcribed for the Castagnoli
// polynomial). This is what lets the three-stream tier stitch independent
// chunk CRCs into the exact sequential checksum.

std::uint32_t gf2_matrix_times(const std::uint32_t* mat, std::uint32_t vec) {
  std::uint32_t sum = 0;
  while (vec != 0) {
    if (vec & 1u) sum ^= *mat;
    vec >>= 1;
    ++mat;
  }
  return sum;
}

void gf2_matrix_square(std::uint32_t* square, const std::uint32_t* mat) {
  for (int n = 0; n < 32; ++n) square[n] = gf2_matrix_times(mat, mat[n]);
}

std::uint32_t crc32c_shift_raw(std::uint32_t crc, std::size_t len) {
  if (len == 0) return crc;
  std::uint32_t even[32];  // operator for 2 zero bits
  std::uint32_t odd[32];   // operator for 1 zero bit
  odd[0] = kCrc32cPoly;
  std::uint32_t row = 1;
  for (int n = 1; n < 32; ++n) {
    odd[n] = row;
    row <<= 1;
  }
  gf2_matrix_square(even, odd);  // 2 zero bits
  gf2_matrix_square(odd, even);  // 4 zero bits
  // Square-and-multiply over the *byte* count: the first square below builds
  // the operator for one zero byte (8 bits), so bit k of `len` applies the
  // operator for 2^k zero bytes.
  std::uint32_t* pair[2] = {even, odd};
  int which = 0;
  do {
    gf2_matrix_square(pair[which], pair[which ^ 1]);
    if (len & 1u) crc = gf2_matrix_times(pair[which], crc);
    len >>= 1;
    which ^= 1;
  } while (len != 0);
  return crc;
}

#ifdef SPIKESTREAM_X86_SIMD

__attribute__((target("sse4.2"))) std::uint32_t crc_hw_raw(
    std::uint32_t crc, const std::uint8_t* p, std::size_t n) {
  std::uint64_t c = crc;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, p + i, sizeof(word));
    c = _mm_crc32_u64(c, word);
  }
  std::uint32_t c32 = static_cast<std::uint32_t>(c);
  for (; i < n; ++i) {
    c32 = _mm_crc32_u8(c32, p[i]);
  }
  return c32;
}

/// Three interleaved crc32 chains over thirds of the buffer, recombined with
/// the GF(2) shift. Exact: crc(A||B||C) == shift(shift(crc(A), |B|) ^
/// crc0(B), |C|) ^ crc0(C), where crc0 runs on a zero-seeded register.
__attribute__((target("sse4.2"))) std::uint32_t crc_hw3_raw(
    std::uint32_t crc, const std::uint8_t* p, std::size_t n) {
  constexpr std::size_t kMinSplit = 3 * 64;  // below this the combine wins
  if (n < kMinSplit) return crc_hw_raw(crc, p, n);
  const std::size_t chunk = (n / 3) & ~std::size_t{7};  // whole 8-byte words
  const std::uint8_t* p0 = p;
  const std::uint8_t* p1 = p + chunk;
  const std::uint8_t* p2 = p + 2 * chunk;
  std::uint64_t c0 = crc;
  std::uint64_t c1 = 0;
  std::uint64_t c2 = 0;
  for (std::size_t i = 0; i + 8 <= chunk; i += 8) {
    std::uint64_t w0, w1, w2;
    std::memcpy(&w0, p0 + i, sizeof(w0));
    std::memcpy(&w1, p1 + i, sizeof(w1));
    std::memcpy(&w2, p2 + i, sizeof(w2));
    c0 = _mm_crc32_u64(c0, w0);
    c1 = _mm_crc32_u64(c1, w1);
    c2 = _mm_crc32_u64(c2, w2);
  }
  std::uint32_t combined =
      crc32c_shift_raw(static_cast<std::uint32_t>(c0), chunk) ^
      static_cast<std::uint32_t>(c1);
  combined = crc32c_shift_raw(combined, chunk) ^
             static_cast<std::uint32_t>(c2);
  // Tail past the three whole chunks continues on the single hardware chain.
  return crc_hw_raw(combined, p + 3 * chunk, n - 3 * chunk);
}

#endif  // SPIKESTREAM_X86_SIMD

}  // namespace

CrcTier crc_max_supported() {
  static const CrcTier t = probe_crc_max_supported();
  return t;
}

CrcTier crc_active() {
  const int f = g_crc_forced.load(std::memory_order_relaxed);
  if (f < 0) return crc_max_supported();
  return static_cast<int>(crc_max_supported()) < f
             ? crc_max_supported()
             : static_cast<CrcTier>(f);
}

CrcTier force_crc_tier(CrcTier t) {
  g_crc_forced.store(static_cast<int>(t), std::memory_order_relaxed);
  return crc_active();
}

std::uint32_t crc32c(const void* data, std::size_t n, std::uint32_t seed) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
#ifdef SPIKESTREAM_X86_SIMD
  switch (crc_active()) {
    case CrcTier::kHw3: return crc_hw3_raw(crc, p, n) ^ 0xFFFFFFFFu;
    case CrcTier::kHw: return crc_hw_raw(crc, p, n) ^ 0xFFFFFFFFu;
    case CrcTier::kTable: break;
  }
#endif
  return crc_table_raw(crc, p, n) ^ 0xFFFFFFFFu;
}

}  // namespace spikestream::common::simd
