#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py (stdlib unittest, run as a
ctest). Each case writes synthetic BENCH_*.json fixtures into a temp dir and
drives the script through subprocess, asserting on the exit-code contract:
0 = ok, 1 = regression, 2 = unusable input (CI skip)."""

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "check_bench_regression.py")


def host_file(sps=100.0, allocs=0.0, concurrency=4, name="analytical",
              mcyc=8.0):
    return {
        "host_concurrency": concurrency,
        "backends": [{
            "name": name,
            "samples_per_sec": sps,
            "steady_allocs_per_layer": allocs,
            "modeled_mcycles_per_sample": mcyc,
        }],
    }


def serve_file(offline=100.0, sat=95.0, full_wave_ms=80.0, concurrency=4,
               light_p95=20.0, light_p99=30.0, heavy_p99=150.0):
    return {
        "bench": "serve_profile",
        "host_concurrency": concurrency,
        "offline_samples_per_sec": offline,
        "full_wave_ms": full_wave_ms,
        "saturation_samples_per_sec": sat,
        "rows": [
            {"mode": "open", "offered_load": 0.10, "p95_ms": light_p95,
             "p99_ms": light_p99},
            {"mode": "open", "offered_load": 0.90, "p95_ms": 120.0,
             "p99_ms": heavy_p99},
            {"mode": "closed", "offered_load": 0.0, "p95_ms": 140.0,
             "p99_ms": heavy_p99 + 10.0},
        ],
    }


def fault_row(lost, sps, replans=None, failures=None, lost_requests=0,
              spikes_match=True):
    replans = lost if replans is None else replans
    failures = lost if failures is None else failures
    return {
        "clusters_lost": lost, "active_clusters": 8 - lost,
        "modeled_sps": sps, "p99_ms": 5.0,
        "admitted": 24, "completed": 24 - lost_requests, "timed_out": 0,
        "errored": 0, "lost_requests": lost_requests,
        "cluster_failures": failures, "degrade_replans": replans,
        "spikes_match_healthy": spikes_match,
    }


def fault_file(healthy=10000.0, curve=None, midrun=None):
    if curve is None:
        curve = [fault_row(0, healthy), fault_row(1, healthy * 0.82),
                 fault_row(2, healthy * 0.69)]
    if midrun is None:
        midrun = dict(fault_row(1, healthy * 0.9), kill_at_wave=3)
    return {
        "bench": "fault_profile",
        "clusters": 8,
        "healthy_modeled_sps": healthy,
        "degradation_curve": curve,
        "midrun_kill": midrun,
    }


def integrity_row(mode, injected=6, detected=None, escapes=0, admitted=28,
                  errored=0, corrupted=0):
    detected = injected if detected is None else detected
    rate = detected / injected if injected else 1.0
    return {
        "mode": mode, "injected_events": injected,
        "data_faults_injected": injected, "detected": detected,
        "detection_rate": rate, "silent_escapes": escapes,
        "integrity_checks": 100, "integrity_mismatches": detected,
        "integrity_faults": detected, "redundant_waves": 0,
        "admitted": admitted, "completed": admitted - errored - corrupted,
        "errored": errored, "corrupted": corrupted,
        "crc_sealed_bytes": 1000, "crc_cycles": 15.6,
    }


def integrity_file(sealed=None, unsealed=None, chk_ov=0.04, ecc_ov=0.07,
                   red_ov=1.1):
    if sealed is None:
        sealed = [
            integrity_row("unprotected", detected=0, escapes=1),
            integrity_row("checksum"),
            integrity_row("redundant"),
        ]
    if unsealed is None:
        unsealed = [
            integrity_row("checksum", injected=4, detected=0, escapes=4),
            integrity_row("redundant", injected=4),
        ]
    return {
        "bench": "integrity_profile",
        "clusters": 4,
        "sealed_paths": sealed,
        "unsealed_paths": unsealed,
        "svgg11_overhead": {
            "network": "svgg11", "lanes": 2, "waves": 8,
            "weight_check_period": 8, "base_modeled_cycles": 33000000,
            "checksum_overhead": chk_ov, "checksum_ecc_overhead": ecc_ov,
            "redundant_overhead": red_ov,
        },
    }


class Base(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()

    def tearDown(self):
        self.dir.cleanup()

    def write(self, name, data):
        path = os.path.join(self.dir.name, name)
        with open(path, "w") as f:
            json.dump(data, f)
        return path

    def run_script(self, *args):
        proc = subprocess.run([sys.executable, SCRIPT, *args],
                              capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr


class HostCompare(Base):
    def test_identical_files_pass(self):
        p = self.write("prev.json", host_file())
        c = self.write("cur.json", host_file())
        rc, out = self.run_script(p, c)
        self.assertEqual(rc, 0, out)

    def test_throughput_regression_fails(self):
        p = self.write("prev.json", host_file(sps=100.0))
        c = self.write("cur.json", host_file(sps=50.0))
        rc, out = self.run_script(p, c, "--threshold", "0.15")
        self.assertEqual(rc, 1, out)
        self.assertIn("THROUGHPUT REGRESSION", out)

    def test_host_concurrency_mismatch_skips_throughput(self):
        p = self.write("prev.json", host_file(sps=100.0, concurrency=8))
        c = self.write("cur.json", host_file(sps=50.0, concurrency=2))
        rc, out = self.run_script(p, c, "--threshold", "0.15")
        self.assertEqual(rc, 0, out)
        self.assertIn("skipping samples/sec compare", out)

    def test_modeled_cycles_checked_despite_host_mismatch(self):
        p = self.write("prev.json", host_file(concurrency=8, mcyc=8.0))
        c = self.write("cur.json", host_file(concurrency=2, mcyc=12.0))
        rc, out = self.run_script(p, c)
        self.assertEqual(rc, 1, out)
        self.assertIn("MODELED-CYCLE REGRESSION", out)

    def test_missing_previous_is_skip_not_failure(self):
        c = self.write("cur.json", host_file())
        rc, out = self.run_script(os.path.join(self.dir.name, "nope.json"), c)
        self.assertEqual(rc, 2, out)

    def test_corrupt_current_is_skip(self):
        p = self.write("prev.json", host_file())
        c = os.path.join(self.dir.name, "cur.json")
        with open(c, "w") as f:
            f.write("{not json")
        rc, out = self.run_script(p, c)
        self.assertEqual(rc, 2, out)

    def test_required_backend_missing_fails(self):
        p = self.write("prev.json", host_file())
        c = self.write("cur.json", host_file())
        rc, out = self.run_script(p, c, "--require", "sharded-4")
        self.assertEqual(rc, 1, out)
        self.assertIn("required backend missing", out)


class ServeGuards(Base):
    def both_hosts(self):
        p = self.write("prev.json", host_file())
        c = self.write("cur.json", host_file())
        return p, c

    def test_saturation_floor_passes(self):
        p, c = self.both_hosts()
        s = self.write("serve.json", serve_file(offline=100.0, sat=95.0))
        rc, out = self.run_script(p, c, "--serve", s,
                                  "--serve-saturation-floor", "0.85")
        self.assertEqual(rc, 0, out)

    def test_saturation_floor_fails(self):
        p, c = self.both_hosts()
        s = self.write("serve.json", serve_file(offline=100.0, sat=60.0))
        rc, out = self.run_script(p, c, "--serve", s,
                                  "--serve-saturation-floor", "0.85")
        self.assertEqual(rc, 1, out)
        self.assertIn("serve saturation floor", out)

    def test_light_p95_guard(self):
        p, c = self.both_hosts()
        ok = self.write("ok.json", serve_file(light_p95=20.0,
                                              full_wave_ms=80.0))
        rc, out = self.run_script(p, c, "--serve", ok,
                                  "--serve-light-p95-factor", "1.0")
        self.assertEqual(rc, 0, out)
        bad = self.write("bad.json", serve_file(light_p95=120.0,
                                                full_wave_ms=80.0))
        rc, out = self.run_script(p, c, "--serve", bad,
                                  "--serve-light-p95-factor", "1.0")
        self.assertEqual(rc, 1, out)
        self.assertIn("light-load p95", out)

    def test_p99_regression_fails(self):
        p, c = self.both_hosts()
        sp = self.write("serve_prev.json", serve_file(heavy_p99=100.0))
        sc = self.write("serve_cur.json", serve_file(heavy_p99=300.0))
        rc, out = self.run_script(p, c, "--serve", sc, "--serve-prev", sp,
                                  "--p99-threshold", "0.5")
        self.assertEqual(rc, 1, out)
        self.assertIn("serve p99 regression", out)

    def test_p99_within_threshold_passes(self):
        p, c = self.both_hosts()
        sp = self.write("serve_prev.json", serve_file(heavy_p99=100.0))
        sc = self.write("serve_cur.json", serve_file(heavy_p99=120.0))
        rc, out = self.run_script(p, c, "--serve", sc, "--serve-prev", sp,
                                  "--p99-threshold", "0.5")
        self.assertEqual(rc, 0, out)

    def test_p99_skipped_on_host_mismatch(self):
        p, c = self.both_hosts()
        sp = self.write("serve_prev.json",
                        serve_file(heavy_p99=100.0, concurrency=8))
        sc = self.write("serve_cur.json",
                        serve_file(heavy_p99=900.0, concurrency=2))
        rc, out = self.run_script(p, c, "--serve", sc, "--serve-prev", sp,
                                  "--p99-threshold", "0.5")
        self.assertEqual(rc, 0, out)
        self.assertIn("skipping p99 compare", out)

    def test_p99_skipped_on_missing_prev(self):
        p, c = self.both_hosts()
        sc = self.write("serve_cur.json", serve_file(heavy_p99=900.0))
        rc, out = self.run_script(
            p, c, "--serve", sc, "--serve-prev",
            os.path.join(self.dir.name, "nope.json"),
            "--p99-threshold", "0.5")
        self.assertEqual(rc, 0, out)
        self.assertIn("skipping p99 compare", out)

    def test_corrupt_serve_current_fails(self):
        p, c = self.both_hosts()
        s = os.path.join(self.dir.name, "serve.json")
        with open(s, "w") as f:
            f.write("[broken")
        rc, out = self.run_script(p, c, "--serve", s,
                                  "--serve-saturation-floor", "0.85")
        self.assertEqual(rc, 1, out)

    def test_serve_guards_fail_even_without_host_baseline(self):
        # Absolute serve floors must fail the run even when the host compare
        # would be a first-run skip (exit 2 path).
        c = self.write("cur.json", host_file())
        s = self.write("serve.json", serve_file(offline=100.0, sat=10.0))
        rc, out = self.run_script(os.path.join(self.dir.name, "nope.json"),
                                  c, "--serve", s,
                                  "--serve-saturation-floor", "0.85")
        self.assertEqual(rc, 1, out)


class FaultGuards(Base):
    def both_hosts(self):
        p = self.write("prev.json", host_file())
        c = self.write("cur.json", host_file())
        return p, c

    def test_healthy_curve_passes(self):
        p, c = self.both_hosts()
        f = self.write("fault.json", fault_file())
        rc, out = self.run_script(p, c, "--fault", f)
        self.assertEqual(rc, 0, out)

    def test_lost_request_fails(self):
        p, c = self.both_hosts()
        curve = [fault_row(0, 10000.0),
                 fault_row(1, 8200.0, lost_requests=1)]
        f = self.write("fault.json", fault_file(curve=curve))
        rc, out = self.run_script(p, c, "--fault", f)
        self.assertEqual(rc, 1, out)
        self.assertIn("admitted requests lost", out)

    def test_spike_divergence_fails(self):
        p, c = self.both_hosts()
        curve = [fault_row(0, 10000.0),
                 fault_row(1, 8200.0, spikes_match=False)]
        f = self.write("fault.json", fault_file(curve=curve))
        rc, out = self.run_script(p, c, "--fault", f)
        self.assertEqual(rc, 1, out)
        self.assertIn("diverged from the healthy baseline", out)

    def test_replan_oscillation_fails(self):
        # Two re-plans for one fault means the degraded mask flapped.
        p, c = self.both_hosts()
        curve = [fault_row(0, 10000.0),
                 fault_row(1, 8200.0, replans=2, failures=1)]
        f = self.write("fault.json", fault_file(curve=curve))
        rc, out = self.run_script(p, c, "--fault", f)
        self.assertEqual(rc, 1, out)
        self.assertIn("re-plan must flip exactly once", out)

    def test_proportional_floor_fails(self):
        # 1 of 8 lost leaves 7/8 = 87.5% capacity; 0.8 * 87.5% = 70% floor.
        p, c = self.both_hosts()
        curve = [fault_row(0, 10000.0), fault_row(1, 6000.0)]
        f = self.write("fault.json", fault_file(curve=curve))
        rc, out = self.run_script(p, c, "--fault", f)
        self.assertEqual(rc, 1, out)
        self.assertIn("proportional floor", out)

    def test_proportional_floor_frac_is_tunable(self):
        p, c = self.both_hosts()
        curve = [fault_row(0, 10000.0), fault_row(1, 6000.0)]
        f = self.write("fault.json", fault_file(curve=curve))
        rc, out = self.run_script(p, c, "--fault", f,
                                  "--fault-floor-frac", "0.6")
        self.assertEqual(rc, 0, out)

    def test_midrun_kill_must_record_one_failure(self):
        p, c = self.both_hosts()
        mid = dict(fault_row(2, 9000.0), kill_at_wave=3)
        f = self.write("fault.json", fault_file(midrun=mid))
        rc, out = self.run_script(p, c, "--fault", f)
        self.assertEqual(rc, 1, out)
        self.assertIn("expected exactly 1 cluster failure", out)

    def test_midrun_lost_request_fails(self):
        p, c = self.both_hosts()
        mid = dict(fault_row(1, 9000.0, lost_requests=2), kill_at_wave=3)
        f = self.write("fault.json", fault_file(midrun=mid))
        rc, out = self.run_script(p, c, "--fault", f)
        self.assertEqual(rc, 1, out)
        self.assertIn("fault:midrun", out)

    def test_corrupt_fault_file_fails(self):
        p, c = self.both_hosts()
        f = os.path.join(self.dir.name, "fault.json")
        with open(f, "w") as fh:
            fh.write("{half a json")
        rc, out = self.run_script(p, c, "--fault", f)
        self.assertEqual(rc, 1, out)

    def test_fault_guards_fail_even_without_host_baseline(self):
        # Absolute fault floors must fail the run even when the host compare
        # would be a first-run skip (exit 2 path).
        c = self.write("cur.json", host_file())
        curve = [fault_row(0, 10000.0),
                 fault_row(1, 8200.0, lost_requests=1)]
        f = self.write("fault.json", fault_file(curve=curve))
        rc, out = self.run_script(os.path.join(self.dir.name, "nope.json"),
                                  c, "--fault", f)
        self.assertEqual(rc, 1, out)


class IntegrityGuards(Base):
    def both_hosts(self):
        p = self.write("prev.json", host_file())
        c = self.write("cur.json", host_file())
        return p, c

    def test_healthy_profile_passes(self):
        p, c = self.both_hosts()
        f = self.write("integrity.json", integrity_file())
        rc, out = self.run_script(p, c, "--integrity", f)
        self.assertEqual(rc, 0, out)

    def test_missed_detection_on_sealed_path_fails(self):
        p, c = self.both_hosts()
        sealed = [integrity_row("unprotected", detected=0, escapes=1),
                  integrity_row("checksum", detected=5, escapes=1),
                  integrity_row("redundant")]
        f = self.write("integrity.json", integrity_file(sealed=sealed))
        rc, out = self.run_script(p, c, "--integrity", f)
        self.assertEqual(rc, 1, out)
        self.assertIn("detection_rate", out)

    def test_unprotected_row_must_demonstrate_the_threat(self):
        # An injection schedule that corrupts nothing proves nothing: the
        # unprotected row must show at least one silent escape.
        p, c = self.both_hosts()
        sealed = [integrity_row("unprotected", detected=0, escapes=0),
                  integrity_row("checksum"),
                  integrity_row("redundant")]
        f = self.write("integrity.json", integrity_file(sealed=sealed))
        rc, out = self.run_script(p, c, "--integrity", f)
        self.assertEqual(rc, 1, out)
        self.assertIn("demonstrate the threat", out)

    def test_unsealed_gap_must_stay_demonstrated(self):
        # If checksum-only stops escaping on the unsealed roster, either the
        # roster stopped targeting the gap or the bench went stale.
        p, c = self.both_hosts()
        unsealed = [integrity_row("checksum", injected=4, detected=0,
                                  escapes=0),
                    integrity_row("redundant", injected=4)]
        f = self.write("integrity.json", integrity_file(unsealed=unsealed))
        rc, out = self.run_script(p, c, "--integrity", f)
        self.assertEqual(rc, 1, out)

    def test_redundant_must_close_the_unsealed_gap(self):
        p, c = self.both_hosts()
        unsealed = [integrity_row("checksum", injected=4, detected=0,
                                  escapes=4),
                    integrity_row("redundant", injected=4, detected=3,
                                  escapes=1)]
        f = self.write("integrity.json", integrity_file(unsealed=unsealed))
        rc, out = self.run_script(p, c, "--integrity", f)
        self.assertEqual(rc, 1, out)

    def test_conservation_violation_fails(self):
        p, c = self.both_hosts()
        bad = integrity_row("checksum")
        bad["completed"] -= 1  # one admitted request unaccounted for
        sealed = [integrity_row("unprotected", detected=0, escapes=1), bad,
                  integrity_row("redundant")]
        f = self.write("integrity.json", integrity_file(sealed=sealed))
        rc, out = self.run_script(p, c, "--integrity", f)
        self.assertEqual(rc, 1, out)
        self.assertIn("requests lost", out)

    def test_overhead_ceiling_fails(self):
        p, c = self.both_hosts()
        f = self.write("integrity.json", integrity_file(ecc_ov=0.16))
        rc, out = self.run_script(p, c, "--integrity", f)
        self.assertEqual(rc, 1, out)
        self.assertIn("exceeds ceiling", out)

    def test_overhead_ceiling_is_tunable(self):
        p, c = self.both_hosts()
        f = self.write("integrity.json", integrity_file(ecc_ov=0.16))
        rc, out = self.run_script(p, c, "--integrity", f,
                                  "--integrity-overhead-ceiling", "0.2")
        self.assertEqual(rc, 0, out)

    def test_redundant_overhead_is_not_gated(self):
        p, c = self.both_hosts()
        f = self.write("integrity.json", integrity_file(red_ov=2.5))
        rc, out = self.run_script(p, c, "--integrity", f)
        self.assertEqual(rc, 0, out)
        self.assertIn("not gated", out)

    def test_missing_mode_row_fails(self):
        p, c = self.both_hosts()
        sealed = [integrity_row("unprotected", detected=0, escapes=1),
                  integrity_row("checksum")]
        f = self.write("integrity.json", integrity_file(sealed=sealed))
        rc, out = self.run_script(p, c, "--integrity", f)
        self.assertEqual(rc, 1, out)
        self.assertIn("row missing: redundant", out)

    def test_corrupt_integrity_file_fails(self):
        p, c = self.both_hosts()
        f = os.path.join(self.dir.name, "integrity.json")
        with open(f, "w") as fh:
            fh.write("{broken")
        rc, out = self.run_script(p, c, "--integrity", f)
        self.assertEqual(rc, 1, out)

    def test_integrity_guards_fail_even_without_host_baseline(self):
        # Absolute integrity floors must fail the run even when the host
        # compare would be a first-run skip (exit 2 path).
        c = self.write("cur.json", host_file())
        f = self.write("integrity.json", integrity_file(ecc_ov=0.5))
        rc, out = self.run_script(os.path.join(self.dir.name, "nope.json"),
                                  c, "--integrity", f)
        self.assertEqual(rc, 1, out)


if __name__ == "__main__":
    unittest.main()
