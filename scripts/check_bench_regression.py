#!/usr/bin/env python3
"""Compare two BENCH_host.json files and fail on a throughput regression.

Usage: check_bench_regression.py PREVIOUS.json CURRENT.json [--threshold 0.15]

Backends are matched by name; a backend whose samples/sec dropped by more
than the threshold fails the check. Backends present in only one file are
reported but never fail (the set changes when backends are added/removed).
Exit codes: 0 = ok, 1 = regression, 2 = unusable input (missing/corrupt
file) — CI treats 2 as a skip, not a failure, so the very first run of a
repository (no previous artifact) passes.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
        return {b["name"]: float(b["samples_per_sec"]) for b in data["backends"]}
    except (OSError, ValueError, KeyError) as e:
        print(f"cannot read {path}: {e}")
        return None


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("previous")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed fractional drop in samples/sec")
    args = ap.parse_args()

    prev = load(args.previous)
    cur = load(args.current)
    if prev is None or cur is None:
        return 2

    failed = []
    print(f"{'backend':<20} {'prev s/s':>12} {'cur s/s':>12} {'delta':>8}")
    for name in sorted(set(prev) | set(cur)):
        if name not in prev or name not in cur:
            where = "current" if name in cur else "previous"
            print(f"{name:<20} {'only in ' + where:>34}")
            continue
        p, c = prev[name], cur[name]
        delta = (c - p) / p if p > 0 else 0.0
        flag = ""
        if delta < -args.threshold:
            failed.append(name)
            flag = "  << REGRESSION"
        print(f"{name:<20} {p:>12.1f} {c:>12.1f} {delta:>+7.1%}{flag}")

    if failed:
        print(f"\nsamples/sec regressed >{args.threshold:.0%} on: "
              f"{', '.join(failed)}")
        return 1
    print("\nno bench regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
