#!/usr/bin/env python3
"""Compare two BENCH_host.json files and fail on a host-perf regression.

Usage: check_bench_regression.py PREVIOUS.json CURRENT.json
           [--threshold 0.15] [--alloc-slack 0.5] [--require NAME ...]

Three checks, each per backend row (matched by name, every row checked —
not just the best one):
  * samples/sec must not drop by more than --threshold (fractional);
  * steady_allocs_per_layer must not grow by more than --alloc-slack
    (absolute allocations per layer — the zero-allocation contract);
  * every --require NAME must be present in the current file (so a perf row
    cannot silently disappear from the profile).
Backends present in only one file are reported but only fail when required.
Exit codes: 0 = ok, 1 = regression, 2 = unusable input (missing/corrupt
file) — CI treats 2 as a skip, not a failure, so the very first run of a
repository (no previous artifact) passes.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
        return {
            b["name"]: {
                "sps": float(b["samples_per_sec"]),
                "allocs": float(b.get("steady_allocs_per_layer", 0.0)),
            }
            for b in data["backends"]
        }
    except (OSError, ValueError, KeyError) as e:
        print(f"cannot read {path}: {e}")
        return None


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("previous")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed fractional drop in samples/sec")
    ap.add_argument("--alloc-slack", type=float, default=0.5,
                    help="max allowed absolute growth in steady-state "
                         "allocations per layer")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME",
                    help="backend row that must exist in CURRENT "
                         "(repeatable)")
    args = ap.parse_args()

    prev = load(args.previous)
    cur = load(args.current)
    if prev is None or cur is None:
        return 2

    failed = []
    for name in args.require:
        if name not in cur:
            failed.append(name)
            print(f"required backend missing from current: {name}")

    print(f"{'backend':<22} {'prev s/s':>10} {'cur s/s':>10} {'delta':>8} "
          f"{'prev a/l':>9} {'cur a/l':>9}")
    for name in sorted(set(prev) | set(cur)):
        if name not in prev or name not in cur:
            where = "current" if name in cur else "previous"
            print(f"{name:<22} {'only in ' + where:>30}")
            continue
        p, c = prev[name], cur[name]
        delta = (c["sps"] - p["sps"]) / p["sps"] if p["sps"] > 0 else 0.0
        flags = []
        if delta < -args.threshold:
            failed.append(name)
            flags.append("<< THROUGHPUT REGRESSION")
        if c["allocs"] > p["allocs"] + args.alloc_slack:
            failed.append(name)
            flags.append("<< ALLOC REGRESSION")
        print(f"{name:<22} {p['sps']:>10.1f} {c['sps']:>10.1f} {delta:>+7.1%} "
              f"{p['allocs']:>9.3f} {c['allocs']:>9.3f}  {' '.join(flags)}")

    if failed:
        print(f"\nbench regression on: {', '.join(sorted(set(failed)))}")
        return 1
    print("\nno bench regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
