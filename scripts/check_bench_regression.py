#!/usr/bin/env python3
"""Compare two BENCH_host.json files and fail on a host-perf regression.

Usage: check_bench_regression.py PREVIOUS.json CURRENT.json
           [--threshold 0.15] [--alloc-slack 0.5] [--require NAME ...]
           [--dma-saved-floor MB] [--dma-threshold 0.10]
           [--row-hit-floor RATE] [--cycles-threshold 0.10]
           [--fig3c BENCH_fig3c.json] [--require-fig3c NET:CLUSTERS:MODE ...]
           [--pipeline-speedup-floor X]
           [--serve BENCH_serve.json] [--serve-prev PREV_serve.json]
           [--serve-saturation-floor FRAC] [--serve-light-p95-factor X]
           [--p99-threshold FRAC] [--p99-slack-ms MS]
           [--fault BENCH_fault.json] [--fault-floor-frac FRAC]
           [--integrity BENCH_integrity.json]
           [--integrity-overhead-ceiling FRAC]

Checks, each per backend row (matched by name, every row checked — not just
the best one):
  * samples/sec must not drop by more than --threshold (fractional) — but
    only when both files record the same host_concurrency: wall-clock
    throughput from different machines is not comparable, so a mismatch
    skips the throughput check (everything modeled — allocations, DMA,
    cycles — is host-invariant and stays checked);
  * steady_allocs_per_layer must not grow by more than --alloc-slack
    (absolute allocations per layer — the zero-allocation contract);
  * every --require NAME must be present in the current file (so a perf row
    cannot silently disappear from the profile);
  * rows carrying batch-DMA savings (name contains "batchreuse" or
    "segmajor") must report steady-state dma_saved of at least
    --dma-saved-floor MB/sample — the modeled saving is a product feature
    and must not silently evaporate;
  * whole-batch modeled DMA (dma_mb_per_sample) must not grow by more than
    --dma-threshold on any row that reports it in both files;
  * banked-DRAM rows (name contains "banked") must report a
    row_hit_rate of at least --row-hit-floor in CURRENT — the band streams
    are sequential by construction, so a collapsing hit rate means the run
    shapes handed to the memory model regressed;
  * modeled whole-network cycles (modeled_mcycles_per_sample) must not grow
    by more than --cycles-threshold on any row reporting it in both files —
    this is the memory-timing regression guard: spikes and host throughput
    can be unchanged while the priced timeline quietly degrades.

Stage-pipeline checks against the CURRENT BENCH_fig3c.json (no previous file
needed — these are absolute floors on modeled cycles):
  * every --require-fig3c NET:CLUSTERS:MODE row must be present (e.g.
    "tower:8:auto"), so a pipeline configuration cannot silently drop out of
    the bench;
  * --pipeline-speedup-floor X: every planner-chosen row (mode "auto") on
    the "tower" network must report steady-state speedup_vs_dp >= X — the
    stage-parallel pipeline must keep beating pure data-parallel.
Serving checks against BENCH_serve.json (--serve):
  * --serve-saturation-floor FRAC: closed-loop saturation throughput must be
    at least FRAC of the offline BatchRunner samples/s recorded in the same
    file — the serving layer must not tax the engine it schedules (absolute,
    within one file, so it needs no previous artifact and no host match);
  * --serve-light-p95-factor X: every light-load open row (offered_load
    <= 0.15) must report p95 below X * full_wave_ms — the SLO controller
    must keep a lone request from paying for lanes it cannot fill;
  * --p99-threshold FRAC (needs --serve-prev): per load row matched by
    (mode, offered_load), p99 must not grow past prev * (1 + FRAC) +
    --p99-slack-ms. Serving latency is wall-clock, so a host_concurrency
    mismatch between the two serve files skips the compare (the absolute
    floors above still run); a missing/unreadable --serve-prev also skips.
Fault-injection checks against BENCH_fault.json (--fault) — all absolute,
single-file, and modeled (host-invariant), so they need no previous artifact:
  * no admitted request may be lost at any degradation point or in the
    mid-run kill: lost_requests must be 0 everywhere (admitted reconciles
    exactly against completed + timed_out + errored);
  * completed requests' spikes must stay bit-identical to the healthy
    baseline (spikes_match_healthy) — fail-stop changes plans, not results;
  * the degraded re-plan must flip exactly once per fault
    (degrade_replans == cluster_failures — no oscillation);
  * --fault-floor-frac FRAC: modeled throughput on the survivors must stay
    above the proportional floor, modeled_sps >= FRAC * healthy_modeled_sps
    * (clusters - clusters_lost) / clusters — losing 1 of 8 clusters may
    cost more than 1/8 (stripe discretization) but must not collapse;
  * the mid-run kill must record exactly one cluster failure and one
    re-plan, with the same zero-loss / bit-identical-spikes contract.
Data-integrity checks against BENCH_integrity.json (--integrity) — absolute,
single-file, and modeled, like the fault guards:
  * sealed paths detect everything: the checksum and redundant rows of
    sealed_paths must report detection_rate 1.0 with zero silent escapes;
  * the unprotected sealed row must demonstrate at least one silent escape
    (the injection schedule must actually corrupt served results — a bench
    that cannot show the threat proves nothing about the defense);
  * the checksum row of unsealed_paths must record at least one silent
    escape (membrane / final-layer flips live past the last sealed boundary
    — the bench demonstrates the documented gap rather than hiding it) and
    the redundant row must close it (detection_rate 1.0, zero escapes);
  * every mode row must conserve requests exactly: admitted == completed +
    errored + corrupted;
  * --integrity-overhead-ceiling FRAC: the S-VGG11 serving row's modeled
    checksum and checksum+ECC overheads must stay at or below FRAC
    (default 0.10); the redundant mode's ~2x is reported, not gated.
Backends present in only one file are reported but only fail when required.
Exit codes: 0 = ok, 1 = regression, 2 = unusable input (missing/corrupt
file) — CI treats 2 as a skip, not a failure, so the very first run of a
repository (no previous artifact) passes.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            data = json.load(f)
        rows = {
            b["name"]: {
                "sps": float(b["samples_per_sec"]),
                "allocs": float(b.get("steady_allocs_per_layer", 0.0)),
                # dma_saved_mb_steady supersedes the flat per-sample figure
                # (which conflated cold-start and steady-state lanes); fall
                # back so old baselines keep comparing.
                "saved": float(
                    b.get("dma_saved_mb_steady",
                          b.get("dma_saved_mb_per_sample", 0.0))),
                "dma": (float(b["dma_mb_per_sample"])
                        if "dma_mb_per_sample" in b else None),
                "hit": (float(b["row_hit_rate"])
                        if "row_hit_rate" in b else None),
                "mcyc": (float(b["modeled_mcycles_per_sample"])
                         if "modeled_mcycles_per_sample" in b else None),
            }
            for b in data["backends"]
        }
        meta = {
            "concurrency": (int(data["host_concurrency"])
                            if "host_concurrency" in data else None),
        }
        return meta, rows
    except (OSError, ValueError, KeyError) as e:
        print(f"cannot read {path}: {e}")
        return None


def load_fig3c(path):
    try:
        with open(path) as f:
            data = json.load(f)
        return {
            (r["network"], int(r["clusters"]), r["mode"]): r
            for r in data["pipeline"]
        }
    except (OSError, ValueError, KeyError) as e:
        print(f"cannot read {path}: {e}")
        return None


def load_serve(path):
    try:
        with open(path) as f:
            data = json.load(f)
        rows = {
            (r["mode"], round(float(r.get("offered_load", 0.0)), 4)): r
            for r in data["rows"]
        }
        return data, rows
    except (OSError, ValueError, KeyError, TypeError) as e:
        print(f"cannot read {path}: {e}")
        return None


def check_serve(args, failed):
    """Tail-latency / serving-throughput guards on BENCH_serve.json."""
    loaded = load_serve(args.serve)
    if loaded is None:
        failed.append("serve")
        return
    data, rows = loaded

    offline = float(data.get("offline_samples_per_sec", 0.0))
    sat = float(data.get("saturation_samples_per_sec", 0.0))
    full_wave = float(data.get("full_wave_ms", 0.0))

    if args.serve_saturation_floor > 0.0:
        if offline <= 0.0:
            failed.append("serve:saturation")
            print("serve saturation floor set but no offline baseline "
                  "recorded")
        else:
            ratio = sat / offline
            if ratio < args.serve_saturation_floor:
                failed.append("serve:saturation")
                print(f"serve saturation floor: {sat:.1f} samples/s is "
                      f"{ratio:.1%} of offline {offline:.1f} "
                      f"< floor {args.serve_saturation_floor:.0%}")
            else:
                print(f"serve saturation: {sat:.1f} samples/s = "
                      f"{ratio:.1%} of offline {offline:.1f} "
                      f">= floor {args.serve_saturation_floor:.0%}")

    if args.serve_light_p95_factor > 0.0:
        light = [(k, r) for k, r in sorted(rows.items())
                 if k[0] == "open" and k[1] <= 0.15]
        if full_wave <= 0.0 or not light:
            failed.append("serve:light-p95")
            print("serve light-load p95 guard set but no light open row / "
                  "full_wave_ms recorded")
        for key, r in light:
            p95 = float(r.get("p95_ms", 0.0))
            bound = args.serve_light_p95_factor * full_wave
            label = f"serve:open:{key[1]:.2f}"
            if p95 >= bound:
                failed.append(label)
                print(f"serve light-load p95: {label} reports {p95:.1f} ms "
                      f">= {bound:.1f} ms "
                      f"({args.serve_light_p95_factor:g} x full wave "
                      f"{full_wave:.1f} ms)")
            else:
                print(f"serve light-load p95: {label} {p95:.1f} ms < "
                      f"{bound:.1f} ms bound")

    if args.serve_prev is None or args.p99_threshold <= 0.0:
        return
    prev_loaded = load_serve(args.serve_prev)
    if prev_loaded is None:
        print("no usable previous serve profile: skipping p99 compare")
        return
    prev_data, prev_rows = prev_loaded
    prev_hc = prev_data.get("host_concurrency")
    cur_hc = data.get("host_concurrency")
    if prev_hc is not None and cur_hc is not None and prev_hc != cur_hc:
        print(f"serve host concurrency changed ({prev_hc} -> {cur_hc}): "
              f"skipping p99 compare (latency is wall-clock)")
        return
    for key in sorted(set(prev_rows) & set(rows)):
        p_p99 = float(prev_rows[key].get("p99_ms", 0.0))
        c_p99 = float(rows[key].get("p99_ms", 0.0))
        if p_p99 <= 0.0:
            continue
        bound = p_p99 * (1.0 + args.p99_threshold) + args.p99_slack_ms
        label = f"serve:{key[0]}:{key[1]:.2f}"
        if c_p99 > bound:
            failed.append(label)
            print(f"serve p99 regression: {label} {p_p99:.1f} -> "
                  f"{c_p99:.1f} ms (bound {bound:.1f})")
        else:
            print(f"serve p99: {label} {p_p99:.1f} -> {c_p99:.1f} ms "
                  f"(bound {bound:.1f})")


def load_fault(path):
    try:
        with open(path) as f:
            data = json.load(f)
        # Touch the required shape up front so a malformed file is "unusable",
        # not a spray of per-row KeyErrors later.
        _ = data["healthy_modeled_sps"], data["clusters"]
        _ = data["degradation_curve"], data["midrun_kill"]
        return data
    except (OSError, ValueError, KeyError, TypeError) as e:
        print(f"cannot read {path}: {e}")
        return None


def check_fault_row(label, row, failed):
    """Zero-loss / bit-exact / replan-parity contract shared by every row."""
    lost_req = int(row.get("lost_requests", -1))
    if lost_req != 0:
        failed.append(label)
        print(f"fault {label}: {lost_req} admitted requests lost "
              f"(admitted {row.get('admitted', '?')}, "
              f"completed {row.get('completed', '?')}, "
              f"timed_out {row.get('timed_out', '?')}, "
              f"errored {row.get('errored', '?')})")
    if not row.get("spikes_match_healthy", False):
        failed.append(label)
        print(f"fault {label}: completed spikes diverged from the healthy "
              f"baseline")
    replans = int(row.get("degrade_replans", -1))
    failures = int(row.get("cluster_failures", -2))
    if replans != failures:
        failed.append(label)
        print(f"fault {label}: degrade_replans {replans} != "
              f"cluster_failures {failures} (re-plan must flip exactly "
              f"once per fault)")


def check_fault(args, failed):
    """Degradation-curve guards on BENCH_fault.json."""
    data = load_fault(args.fault)
    if data is None:
        failed.append("fault")
        return
    healthy = float(data["healthy_modeled_sps"])
    clusters = int(data["clusters"])
    frac = args.fault_floor_frac

    rows = data["degradation_curve"]
    if not rows:
        failed.append("fault:curve")
        print("fault guard set but degradation_curve is empty")
    for row in rows:
        lost = int(row.get("clusters_lost", 0))
        label = f"fault:lost{lost}"
        check_fault_row(label, row, failed)
        sps = float(row.get("modeled_sps", 0.0))
        if frac > 0.0 and healthy > 0.0 and clusters > 0:
            floor = frac * healthy * (clusters - lost) / clusters
            if sps < floor:
                failed.append(label)
                print(f"fault {label}: modeled {sps:.1f} samples/s < "
                      f"proportional floor {floor:.1f} "
                      f"({frac:g} x {healthy:.1f} x "
                      f"{clusters - lost}/{clusters} survivors)")
            else:
                print(f"fault {label}: modeled {sps:.1f} samples/s >= "
                      f"floor {floor:.1f} "
                      f"({clusters - lost}/{clusters} survivors, "
                      f"replans {row.get('degrade_replans', '?')})")

    mid = data["midrun_kill"]
    check_fault_row("fault:midrun", mid, failed)
    if int(mid.get("cluster_failures", -1)) != 1:
        failed.append("fault:midrun")
        print(f"fault fault:midrun: expected exactly 1 cluster failure, "
              f"got {mid.get('cluster_failures', '?')}")
    else:
        print(f"fault fault:midrun: kill at wave "
              f"{mid.get('kill_at_wave', '?')} drained "
              f"{mid.get('completed', '?')}/{mid.get('admitted', '?')} "
              f"requests, {mid.get('active_clusters', '?')} clusters left")


def load_integrity(path):
    try:
        with open(path) as f:
            data = json.load(f)
        # Touch the required shape up front so a malformed file is "unusable",
        # not a spray of per-row KeyErrors later.
        _ = data["sealed_paths"], data["unsealed_paths"]
        _ = data["svgg11_overhead"]
        return data
    except (OSError, ValueError, KeyError, TypeError) as e:
        print(f"cannot read {path}: {e}")
        return None


def integrity_rows(data, section):
    return {r["mode"]: r for r in data[section]}


def check_integrity_row(label, row, failed, want_detect=None,
                        want_escapes=None, min_escapes=None):
    """Shared detection / escape / conservation contract per mode row."""
    admitted = int(row.get("admitted", -1))
    accounted = (int(row.get("completed", 0)) + int(row.get("errored", 0))
                 + int(row.get("corrupted", 0)))
    if admitted != accounted:
        failed.append(label)
        print(f"integrity {label}: admitted {admitted} != completed + "
              f"errored + corrupted {accounted} (requests lost)")
    rate = float(row.get("detection_rate", -1.0))
    escapes = int(row.get("silent_escapes", -1))
    if want_detect is not None and rate < want_detect:
        failed.append(label)
        print(f"integrity {label}: detection_rate {rate:.4f} < required "
              f"{want_detect:.4f} "
              f"(detected {row.get('detected', '?')}/"
              f"{row.get('injected_events', '?')})")
    if want_escapes is not None and escapes != want_escapes:
        failed.append(label)
        print(f"integrity {label}: {escapes} silent escapes, expected "
              f"exactly {want_escapes}")
    if min_escapes is not None and escapes < min_escapes:
        failed.append(label)
        print(f"integrity {label}: only {escapes} silent escapes recorded, "
              f"expected at least {min_escapes} — the injection schedule "
              f"must demonstrate the threat")


def check_integrity(args, failed):
    """Detection floors and overhead ceiling on BENCH_integrity.json."""
    data = load_integrity(args.integrity)
    if data is None:
        failed.append("integrity")
        return

    sealed = integrity_rows(data, "sealed_paths")
    unsealed = integrity_rows(data, "unsealed_paths")
    for mode in ("unprotected", "checksum", "redundant"):
        if mode not in sealed:
            failed.append(f"integrity:sealed:{mode}")
            print(f"integrity: sealed_paths row missing: {mode}")
    for mode in ("checksum", "redundant"):
        if mode not in unsealed:
            failed.append(f"integrity:unsealed:{mode}")
            print(f"integrity: unsealed_paths row missing: {mode}")

    if "unprotected" in sealed:
        check_integrity_row("sealed:unprotected", sealed["unprotected"],
                            failed, min_escapes=1)
    for mode in ("checksum", "redundant"):
        if mode in sealed:
            check_integrity_row(f"sealed:{mode}", sealed[mode], failed,
                                want_detect=1.0, want_escapes=0)
    if "checksum" in unsealed:
        check_integrity_row("unsealed:checksum", unsealed["checksum"],
                            failed, min_escapes=1)
    if "redundant" in unsealed:
        check_integrity_row("unsealed:redundant", unsealed["redundant"],
                            failed, want_detect=1.0, want_escapes=0)

    ov = data["svgg11_overhead"]
    ceiling = args.integrity_overhead_ceiling
    if ceiling > 0.0:
        for key in ("checksum_overhead", "checksum_ecc_overhead"):
            val = float(ov.get(key, -1.0))
            label = f"integrity:{key}"
            if val < 0.0 or val > ceiling:
                failed.append(label)
                print(f"integrity {label}: modeled overhead {val:.4f} "
                      f"exceeds ceiling {ceiling:.4f} on the "
                      f"{ov.get('network', '?')} serving row")
            else:
                print(f"integrity {label}: {val:.4f} <= ceiling "
                      f"{ceiling:.4f}")
    red = float(ov.get("redundant_overhead", 0.0))
    print(f"integrity: redundant mode costs {red:.4f} (reported, not gated)")


def wants_dma_floor(name):
    return "batchreuse" in name or "segmajor" in name


def check_fig3c(args, failed):
    """Absolute floors on the stage-pipeline rows of the current run."""
    rows = load_fig3c(args.fig3c)
    if rows is None:
        failed.append("fig3c")
        return
    for spec in args.require_fig3c:
        try:
            net, clusters, mode = spec.split(":")
            key = (net, int(clusters), mode)
        except ValueError:
            failed.append(spec)
            print(f"malformed --require-fig3c spec: {spec}")
            continue
        if key not in rows:
            failed.append(spec)
            print(f"required fig3c pipeline row missing: {spec}")
    if args.pipeline_speedup_floor > 0.0:
        auto_rows = [(k, r) for k, r in sorted(rows.items())
                     if k[0] == "tower" and k[2] == "auto"]
        if not auto_rows:
            failed.append("fig3c:auto")
            print("pipeline speedup floor set but no tower auto rows found")
        for key, r in auto_rows:
            speedup = float(r.get("speedup_vs_dp", 0.0))
            label = ":".join(str(p) for p in key)
            if speedup < args.pipeline_speedup_floor:
                failed.append(label)
                print(f"pipeline speedup floor: {label} reports "
                      f"{speedup:.2f}x < floor "
                      f"{args.pipeline_speedup_floor:.2f}x "
                      f"(chosen {r.get('chosen', '?')}, "
                      f"{r.get('stages', '?')} stages)")
            else:
                print(f"pipeline row {label}: {speedup:.2f}x vs DP "
                      f"(chosen {r.get('chosen', '?')}, "
                      f"{r.get('stages', '?')} stages, "
                      f"stall {float(r.get('fifo_stall_cycles', 0.0)):.0f} "
                      f"cyc) >= floor {args.pipeline_speedup_floor:.2f}x")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("previous")
    ap.add_argument("current")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max allowed fractional drop in samples/sec")
    ap.add_argument("--alloc-slack", type=float, default=0.5,
                    help="max allowed absolute growth in steady-state "
                         "allocations per layer")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME",
                    help="backend row that must exist in CURRENT "
                         "(repeatable)")
    ap.add_argument("--dma-saved-floor", type=float, default=0.0,
                    metavar="MB",
                    help="min steady-state dma_saved MB/sample on "
                         "batchreuse/segmajor rows of CURRENT")
    ap.add_argument("--dma-threshold", type=float, default=0.10,
                    help="max allowed fractional growth in whole-batch "
                         "modeled DMA per sample")
    ap.add_argument("--row-hit-floor", type=float, default=0.0,
                    metavar="RATE",
                    help="min row_hit_rate on banked-DRAM rows of CURRENT")
    ap.add_argument("--cycles-threshold", type=float, default=0.10,
                    help="max allowed fractional growth in modeled "
                         "whole-network cycles per sample")
    ap.add_argument("--fig3c", default=None, metavar="JSON",
                    help="current BENCH_fig3c.json to check pipeline floors "
                         "against (absolute, no previous file needed)")
    ap.add_argument("--require-fig3c", action="append", default=[],
                    metavar="NET:CLUSTERS:MODE",
                    help="pipeline row that must exist in --fig3c, e.g. "
                         "tower:8:auto (repeatable)")
    ap.add_argument("--pipeline-speedup-floor", type=float, default=0.0,
                    metavar="X",
                    help="min steady-state speedup_vs_dp on the tower auto "
                         "rows of --fig3c")
    ap.add_argument("--serve", default=None, metavar="JSON",
                    help="current BENCH_serve.json for the serving guards")
    ap.add_argument("--serve-prev", default=None, metavar="JSON",
                    help="previous BENCH_serve.json for the p99 compare "
                         "(missing file = skip)")
    ap.add_argument("--serve-saturation-floor", type=float, default=0.0,
                    metavar="FRAC",
                    help="min closed-loop saturation throughput as a "
                         "fraction of the offline baseline in --serve")
    ap.add_argument("--serve-light-p95-factor", type=float, default=0.0,
                    metavar="X",
                    help="light-load open rows must keep p95 below "
                         "X * full_wave_ms in --serve")
    ap.add_argument("--p99-threshold", type=float, default=0.0,
                    metavar="FRAC",
                    help="max allowed fractional p99 growth per serve load "
                         "row vs --serve-prev")
    ap.add_argument("--p99-slack-ms", type=float, default=5.0,
                    metavar="MS",
                    help="absolute p99 slack added on top of the "
                         "fractional threshold")
    ap.add_argument("--fault", default=None, metavar="JSON",
                    help="current BENCH_fault.json for the fault-injection "
                         "guards (absolute, no previous file needed)")
    ap.add_argument("--fault-floor-frac", type=float, default=0.8,
                    metavar="FRAC",
                    help="degraded modeled throughput must stay above "
                         "FRAC * healthy * survivors/clusters")
    ap.add_argument("--integrity", default=None, metavar="JSON",
                    help="current BENCH_integrity.json for the data-"
                         "integrity guards (absolute, no previous file "
                         "needed)")
    ap.add_argument("--integrity-overhead-ceiling", type=float, default=0.10,
                    metavar="FRAC",
                    help="max modeled checksum / checksum+ECC overhead on "
                         "the S-VGG11 serving row")
    args = ap.parse_args()

    failed = []
    if args.fig3c is not None:
        check_fig3c(args, failed)
    if args.serve is not None:
        check_serve(args, failed)
    if args.fault is not None:
        check_fault(args, failed)
    if args.integrity is not None:
        check_integrity(args, failed)

    loaded_prev = load(args.previous)
    loaded_cur = load(args.current)
    if loaded_prev is None or loaded_cur is None:
        # The fig3c, fault and integrity floors are absolute checks on the
        # current build: they still fail the run even when there is no
        # usable previous baseline.
        return 1 if failed else 2
    prev_meta, prev = loaded_prev
    cur_meta, cur = loaded_cur

    # Throughput deltas are only meaningful on comparable hosts.
    compare_throughput = True
    if (prev_meta["concurrency"] is not None
            and cur_meta["concurrency"] is not None
            and prev_meta["concurrency"] != cur_meta["concurrency"]):
        compare_throughput = False
        print(f"host concurrency changed "
              f"({prev_meta['concurrency']} -> {cur_meta['concurrency']}): "
              f"skipping samples/sec compare, modeled columns still checked")

    for name in args.require:
        if name not in cur:
            failed.append(name)
            print(f"required backend missing from current: {name}")

    if args.dma_saved_floor > 0.0:
        for name, row in sorted(cur.items()):
            if not wants_dma_floor(name):
                continue
            if row["saved"] < args.dma_saved_floor:
                failed.append(name)
                print(f"dma_saved floor: {name} reports "
                      f"{row['saved']:.3f} MB/sample "
                      f"< floor {args.dma_saved_floor:.3f}")

    if args.row_hit_floor > 0.0:
        for name, row in sorted(cur.items()):
            if "banked" not in name or row["hit"] is None:
                continue
            if row["hit"] < args.row_hit_floor:
                failed.append(name)
                print(f"row-hit floor: {name} reports hit rate "
                      f"{row['hit']:.3f} < floor {args.row_hit_floor:.3f}")

    print(f"{'backend':<26} {'prev s/s':>10} {'cur s/s':>10} {'delta':>8} "
          f"{'prev a/l':>9} {'cur a/l':>9} {'prev MB':>8} {'cur MB':>8} "
          f"{'prev Mc':>8} {'cur Mc':>8}")
    for name in sorted(set(prev) | set(cur)):
        if name not in prev or name not in cur:
            where = "current" if name in cur else "previous"
            print(f"{name:<26} {'only in ' + where:>30}")
            continue
        p, c = prev[name], cur[name]
        delta = (c["sps"] - p["sps"]) / p["sps"] if p["sps"] > 0 else 0.0
        flags = []
        if compare_throughput and delta < -args.threshold:
            failed.append(name)
            flags.append("<< THROUGHPUT REGRESSION")
        if c["allocs"] > p["allocs"] + args.alloc_slack:
            failed.append(name)
            flags.append("<< ALLOC REGRESSION")
        if (p["dma"] is not None and c["dma"] is not None and p["dma"] > 0
                and c["dma"] > p["dma"] * (1.0 + args.dma_threshold)):
            failed.append(name)
            flags.append("<< DMA REGRESSION")
        if (p["mcyc"] is not None and c["mcyc"] is not None and p["mcyc"] > 0
                and c["mcyc"] > p["mcyc"] * (1.0 + args.cycles_threshold)):
            failed.append(name)
            flags.append("<< MODELED-CYCLE REGRESSION")
        dma_prev = f"{p['dma']:.1f}" if p["dma"] is not None else "-"
        dma_cur = f"{c['dma']:.1f}" if c["dma"] is not None else "-"
        mc_prev = f"{p['mcyc']:.3f}" if p["mcyc"] is not None else "-"
        mc_cur = f"{c['mcyc']:.3f}" if c["mcyc"] is not None else "-"
        print(f"{name:<26} {p['sps']:>10.1f} {c['sps']:>10.1f} {delta:>+7.1%} "
              f"{p['allocs']:>9.3f} {c['allocs']:>9.3f} {dma_prev:>8} "
              f"{dma_cur:>8} {mc_prev:>8} {mc_cur:>8}  {' '.join(flags)}")

    if failed:
        print(f"\nbench regression on: {', '.join(sorted(set(failed)))}")
        return 1
    print("\nno bench regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
