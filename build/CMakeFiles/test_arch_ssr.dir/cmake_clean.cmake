file(REMOVE_RECURSE
  "CMakeFiles/test_arch_ssr.dir/tests/test_arch_ssr.cpp.o"
  "CMakeFiles/test_arch_ssr.dir/tests/test_arch_ssr.cpp.o.d"
  "test_arch_ssr"
  "test_arch_ssr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_ssr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
