# Empty dependencies file for test_arch_ssr.
# This may be replaced when dependencies are built.
