file(REMOVE_RECURSE
  "CMakeFiles/test_snn.dir/tests/test_snn.cpp.o"
  "CMakeFiles/test_snn.dir/tests/test_snn.cpp.o.d"
  "test_snn"
  "test_snn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
