# Empty dependencies file for test_snn.
# This may be replaced when dependencies are built.
