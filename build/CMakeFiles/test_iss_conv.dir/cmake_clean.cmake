file(REMOVE_RECURSE
  "CMakeFiles/test_iss_conv.dir/tests/test_iss_conv.cpp.o"
  "CMakeFiles/test_iss_conv.dir/tests/test_iss_conv.cpp.o.d"
  "test_iss_conv"
  "test_iss_conv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iss_conv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
