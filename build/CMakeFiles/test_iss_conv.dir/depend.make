# Empty dependencies file for test_iss_conv.
# This may be replaced when dependencies are built.
