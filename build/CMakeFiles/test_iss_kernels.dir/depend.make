# Empty dependencies file for test_iss_kernels.
# This may be replaced when dependencies are built.
