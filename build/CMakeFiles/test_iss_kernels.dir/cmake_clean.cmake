file(REMOVE_RECURSE
  "CMakeFiles/test_iss_kernels.dir/tests/test_iss_kernels.cpp.o"
  "CMakeFiles/test_iss_kernels.dir/tests/test_iss_kernels.cpp.o.d"
  "test_iss_kernels"
  "test_iss_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_iss_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
