file(REMOVE_RECURSE
  "CMakeFiles/test_arch_core.dir/tests/test_arch_core.cpp.o"
  "CMakeFiles/test_arch_core.dir/tests/test_arch_core.cpp.o.d"
  "test_arch_core"
  "test_arch_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
