# Empty dependencies file for svgg11_inference.
# This may be replaced when dependencies are built.
