file(REMOVE_RECURSE
  "CMakeFiles/svgg11_inference.dir/examples/svgg11_inference.cpp.o"
  "CMakeFiles/svgg11_inference.dir/examples/svgg11_inference.cpp.o.d"
  "svgg11_inference"
  "svgg11_inference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svgg11_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
