# Empty dependencies file for micro_spva.
# This may be replaced when dependencies are built.
