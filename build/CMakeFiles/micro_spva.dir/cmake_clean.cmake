file(REMOVE_RECURSE
  "CMakeFiles/micro_spva.dir/bench/micro_spva.cpp.o"
  "CMakeFiles/micro_spva.dir/bench/micro_spva.cpp.o.d"
  "micro_spva"
  "micro_spva.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_spva.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
