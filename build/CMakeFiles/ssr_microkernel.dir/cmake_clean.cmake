file(REMOVE_RECURSE
  "CMakeFiles/ssr_microkernel.dir/examples/ssr_microkernel.cpp.o"
  "CMakeFiles/ssr_microkernel.dir/examples/ssr_microkernel.cpp.o.d"
  "ssr_microkernel"
  "ssr_microkernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ssr_microkernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
