# Empty dependencies file for ssr_microkernel.
# This may be replaced when dependencies are built.
