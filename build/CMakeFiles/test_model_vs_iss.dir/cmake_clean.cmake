file(REMOVE_RECURSE
  "CMakeFiles/test_model_vs_iss.dir/tests/test_model_vs_iss.cpp.o"
  "CMakeFiles/test_model_vs_iss.dir/tests/test_model_vs_iss.cpp.o.d"
  "test_model_vs_iss"
  "test_model_vs_iss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_vs_iss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
