# Empty dependencies file for test_model_vs_iss.
# This may be replaced when dependencies are built.
