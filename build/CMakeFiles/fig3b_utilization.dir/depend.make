# Empty dependencies file for fig3b_utilization.
# This may be replaced when dependencies are built.
