file(REMOVE_RECURSE
  "CMakeFiles/fig3b_utilization.dir/bench/fig3b_utilization.cpp.o"
  "CMakeFiles/fig3b_utilization.dir/bench/fig3b_utilization.cpp.o.d"
  "fig3b_utilization"
  "fig3b_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
