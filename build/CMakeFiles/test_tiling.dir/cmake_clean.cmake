file(REMOVE_RECURSE
  "CMakeFiles/test_tiling.dir/tests/test_tiling.cpp.o"
  "CMakeFiles/test_tiling.dir/tests/test_tiling.cpp.o.d"
  "test_tiling"
  "test_tiling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tiling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
