file(REMOVE_RECURSE
  "CMakeFiles/test_arch_cluster.dir/tests/test_arch_cluster.cpp.o"
  "CMakeFiles/test_arch_cluster.dir/tests/test_arch_cluster.cpp.o.d"
  "test_arch_cluster"
  "test_arch_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
