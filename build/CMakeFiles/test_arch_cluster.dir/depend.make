# Empty dependencies file for test_arch_cluster.
# This may be replaced when dependencies are built.
