# Empty dependencies file for test_float_formats.
# This may be replaced when dependencies are built.
