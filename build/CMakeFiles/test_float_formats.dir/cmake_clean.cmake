file(REMOVE_RECURSE
  "CMakeFiles/test_float_formats.dir/tests/test_float_formats.cpp.o"
  "CMakeFiles/test_float_formats.dir/tests/test_float_formats.cpp.o.d"
  "test_float_formats"
  "test_float_formats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_float_formats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
