file(REMOVE_RECURSE
  "CMakeFiles/test_soa.dir/tests/test_soa.cpp.o"
  "CMakeFiles/test_soa.dir/tests/test_soa.cpp.o.d"
  "test_soa"
  "test_soa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_soa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
