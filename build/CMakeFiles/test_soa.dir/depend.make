# Empty dependencies file for test_soa.
# This may be replaced when dependencies are built.
