file(REMOVE_RECURSE
  "CMakeFiles/test_calibrate.dir/tests/test_calibrate.cpp.o"
  "CMakeFiles/test_calibrate.dir/tests/test_calibrate.cpp.o.d"
  "test_calibrate"
  "test_calibrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calibrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
