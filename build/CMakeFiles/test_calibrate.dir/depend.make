# Empty dependencies file for test_calibrate.
# This may be replaced when dependencies are built.
