file(REMOVE_RECURSE
  "CMakeFiles/ablation_cores.dir/bench/ablation_cores.cpp.o"
  "CMakeFiles/ablation_cores.dir/bench/ablation_cores.cpp.o.d"
  "ablation_cores"
  "ablation_cores.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cores.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
