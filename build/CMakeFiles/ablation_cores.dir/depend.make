# Empty dependencies file for ablation_cores.
# This may be replaced when dependencies are built.
