# Empty dependencies file for fig5_soa.
# This may be replaced when dependencies are built.
