file(REMOVE_RECURSE
  "CMakeFiles/fig5_soa.dir/bench/fig5_soa.cpp.o"
  "CMakeFiles/fig5_soa.dir/bench/fig5_soa.cpp.o.d"
  "fig5_soa"
  "fig5_soa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_soa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
