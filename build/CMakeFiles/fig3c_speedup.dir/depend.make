# Empty dependencies file for fig3c_speedup.
# This may be replaced when dependencies are built.
