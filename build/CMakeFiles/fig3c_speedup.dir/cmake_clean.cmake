file(REMOVE_RECURSE
  "CMakeFiles/fig3c_speedup.dir/bench/fig3c_speedup.cpp.o"
  "CMakeFiles/fig3c_speedup.dir/bench/fig3c_speedup.cpp.o.d"
  "fig3c_speedup"
  "fig3c_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3c_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
