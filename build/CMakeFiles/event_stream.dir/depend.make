# Empty dependencies file for event_stream.
# This may be replaced when dependencies are built.
