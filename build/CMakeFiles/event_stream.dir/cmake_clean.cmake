file(REMOVE_RECURSE
  "CMakeFiles/event_stream.dir/examples/event_stream.cpp.o"
  "CMakeFiles/event_stream.dir/examples/event_stream.cpp.o.d"
  "event_stream"
  "event_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
