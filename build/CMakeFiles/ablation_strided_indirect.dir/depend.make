# Empty dependencies file for ablation_strided_indirect.
# This may be replaced when dependencies are built.
