file(REMOVE_RECURSE
  "CMakeFiles/ablation_strided_indirect.dir/bench/ablation_strided_indirect.cpp.o"
  "CMakeFiles/ablation_strided_indirect.dir/bench/ablation_strided_indirect.cpp.o.d"
  "ablation_strided_indirect"
  "ablation_strided_indirect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_strided_indirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
