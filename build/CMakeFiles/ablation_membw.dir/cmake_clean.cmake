file(REMOVE_RECURSE
  "CMakeFiles/ablation_membw.dir/bench/ablation_membw.cpp.o"
  "CMakeFiles/ablation_membw.dir/bench/ablation_membw.cpp.o.d"
  "ablation_membw"
  "ablation_membw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_membw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
