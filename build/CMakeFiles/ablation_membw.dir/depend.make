# Empty dependencies file for ablation_membw.
# This may be replaced when dependencies are built.
