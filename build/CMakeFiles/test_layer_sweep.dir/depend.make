# Empty dependencies file for test_layer_sweep.
# This may be replaced when dependencies are built.
