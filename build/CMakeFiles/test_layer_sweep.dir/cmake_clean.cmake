file(REMOVE_RECURSE
  "CMakeFiles/test_layer_sweep.dir/tests/test_layer_sweep.cpp.o"
  "CMakeFiles/test_layer_sweep.dir/tests/test_layer_sweep.cpp.o.d"
  "test_layer_sweep"
  "test_layer_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_layer_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
