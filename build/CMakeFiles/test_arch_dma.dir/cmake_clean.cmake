file(REMOVE_RECURSE
  "CMakeFiles/test_arch_dma.dir/tests/test_arch_dma.cpp.o"
  "CMakeFiles/test_arch_dma.dir/tests/test_arch_dma.cpp.o.d"
  "test_arch_dma"
  "test_arch_dma.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_dma.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
