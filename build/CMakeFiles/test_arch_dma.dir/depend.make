# Empty dependencies file for test_arch_dma.
# This may be replaced when dependencies are built.
