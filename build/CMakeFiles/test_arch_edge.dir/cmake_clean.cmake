file(REMOVE_RECURSE
  "CMakeFiles/test_arch_edge.dir/tests/test_arch_edge.cpp.o"
  "CMakeFiles/test_arch_edge.dir/tests/test_arch_edge.cpp.o.d"
  "test_arch_edge"
  "test_arch_edge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_arch_edge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
