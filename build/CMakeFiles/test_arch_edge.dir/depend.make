# Empty dependencies file for test_arch_edge.
# This may be replaced when dependencies are built.
