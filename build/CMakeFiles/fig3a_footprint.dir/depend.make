# Empty dependencies file for fig3a_footprint.
# This may be replaced when dependencies are built.
