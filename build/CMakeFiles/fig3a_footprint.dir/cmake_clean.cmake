file(REMOVE_RECURSE
  "CMakeFiles/fig3a_footprint.dir/bench/fig3a_footprint.cpp.o"
  "CMakeFiles/fig3a_footprint.dir/bench/fig3a_footprint.cpp.o.d"
  "fig3a_footprint"
  "fig3a_footprint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_footprint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
