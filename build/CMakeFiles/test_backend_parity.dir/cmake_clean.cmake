file(REMOVE_RECURSE
  "CMakeFiles/test_backend_parity.dir/tests/test_backend_parity.cpp.o"
  "CMakeFiles/test_backend_parity.dir/tests/test_backend_parity.cpp.o.d"
  "test_backend_parity"
  "test_backend_parity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_backend_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
