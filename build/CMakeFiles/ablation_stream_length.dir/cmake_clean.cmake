file(REMOVE_RECURSE
  "CMakeFiles/ablation_stream_length.dir/bench/ablation_stream_length.cpp.o"
  "CMakeFiles/ablation_stream_length.dir/bench/ablation_stream_length.cpp.o.d"
  "ablation_stream_length"
  "ablation_stream_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stream_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
