# Empty dependencies file for ablation_stream_length.
# This may be replaced when dependencies are built.
