
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/cluster.cpp" "CMakeFiles/spikestream.dir/src/arch/cluster.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/arch/cluster.cpp.o.d"
  "/root/repo/src/arch/core.cpp" "CMakeFiles/spikestream.dir/src/arch/core.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/arch/core.cpp.o.d"
  "/root/repo/src/arch/program.cpp" "CMakeFiles/spikestream.dir/src/arch/program.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/arch/program.cpp.o.d"
  "/root/repo/src/arch/ssr.cpp" "CMakeFiles/spikestream.dir/src/arch/ssr.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/arch/ssr.cpp.o.d"
  "/root/repo/src/common/float_formats.cpp" "CMakeFiles/spikestream.dir/src/common/float_formats.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/common/float_formats.cpp.o.d"
  "/root/repo/src/compress/aer.cpp" "CMakeFiles/spikestream.dir/src/compress/aer.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/compress/aer.cpp.o.d"
  "/root/repo/src/compress/csr_ifmap.cpp" "CMakeFiles/spikestream.dir/src/compress/csr_ifmap.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/compress/csr_ifmap.cpp.o.d"
  "/root/repo/src/kernels/iss_conv.cpp" "CMakeFiles/spikestream.dir/src/kernels/iss_conv.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/kernels/iss_conv.cpp.o.d"
  "/root/repo/src/kernels/iss_kernels.cpp" "CMakeFiles/spikestream.dir/src/kernels/iss_kernels.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/kernels/iss_kernels.cpp.o.d"
  "/root/repo/src/kernels/layer_kernels.cpp" "CMakeFiles/spikestream.dir/src/kernels/layer_kernels.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/kernels/layer_kernels.cpp.o.d"
  "/root/repo/src/kernels/tiling.cpp" "CMakeFiles/spikestream.dir/src/kernels/tiling.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/kernels/tiling.cpp.o.d"
  "/root/repo/src/runtime/backend.cpp" "CMakeFiles/spikestream.dir/src/runtime/backend.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/runtime/backend.cpp.o.d"
  "/root/repo/src/runtime/backend_cycle.cpp" "CMakeFiles/spikestream.dir/src/runtime/backend_cycle.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/runtime/backend_cycle.cpp.o.d"
  "/root/repo/src/runtime/backend_sharded.cpp" "CMakeFiles/spikestream.dir/src/runtime/backend_sharded.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/runtime/backend_sharded.cpp.o.d"
  "/root/repo/src/runtime/batch.cpp" "CMakeFiles/spikestream.dir/src/runtime/batch.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/runtime/batch.cpp.o.d"
  "/root/repo/src/runtime/engine.cpp" "CMakeFiles/spikestream.dir/src/runtime/engine.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/runtime/engine.cpp.o.d"
  "/root/repo/src/snn/calibrate.cpp" "CMakeFiles/spikestream.dir/src/snn/calibrate.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/snn/calibrate.cpp.o.d"
  "/root/repo/src/snn/network.cpp" "CMakeFiles/spikestream.dir/src/snn/network.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/snn/network.cpp.o.d"
  "/root/repo/src/snn/reference.cpp" "CMakeFiles/spikestream.dir/src/snn/reference.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/snn/reference.cpp.o.d"
  "/root/repo/src/soa/comparison.cpp" "CMakeFiles/spikestream.dir/src/soa/comparison.cpp.o" "gcc" "CMakeFiles/spikestream.dir/src/soa/comparison.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
