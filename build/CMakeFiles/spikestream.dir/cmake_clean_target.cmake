file(REMOVE_RECURSE
  "libspikestream.a"
)
