# Empty dependencies file for spikestream.
# This may be replaced when dependencies are built.
