// Building a custom spiking network layer by layer — e.g. the kind of compact
// event-driven model used for drone obstacle avoidance (Zanatta et al., cited
// in the paper's FP-precision motivation). Shows the LayerSpec API, per-layer
// threshold control, FP-format exploration, and per-layer metric extraction.
//
//   $ ./custom_network
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "runtime/engine.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"

namespace snn = spikestream::snn;
namespace k = spikestream::kernels;
namespace rt = spikestream::runtime;
namespace sc = spikestream::common;

int main() {
  // A 5-layer perception network for 48x48 sensor frames.
  snn::Network net;

  snn::LayerSpec enc;       // spike encoding from raw pixels
  enc.kind = snn::LayerKind::kEncodeConv;
  enc.name = "encode";
  enc.in_h = enc.in_w = 50;  // 48 + 2 padding
  enc.in_c = 2;              // e.g. intensity + depth
  enc.k = 3;
  enc.out_c = 16;
  enc.pool_after = true;     // 48 -> 24
  net.add_layer(enc);

  snn::LayerSpec c2;
  c2.kind = snn::LayerKind::kConv;
  c2.name = "conv2";
  c2.in_h = c2.in_w = 26;    // 24 + padding
  c2.in_c = 16;
  c2.k = 3;
  c2.out_c = 32;
  c2.pool_after = true;      // 24 -> 12
  net.add_layer(c2);

  snn::LayerSpec c3;
  c3.kind = snn::LayerKind::kConv;
  c3.name = "conv3";
  c3.in_h = c3.in_w = 14;    // 12 + padding
  c3.in_c = 32;
  c3.k = 3;
  c3.out_c = 64;
  net.add_layer(c3);

  snn::LayerSpec fc1;
  fc1.kind = snn::LayerKind::kFc;
  fc1.name = "fc1";
  fc1.in_c = 12 * 12 * 64;
  fc1.out_c = 128;
  net.add_layer(fc1);

  snn::LayerSpec fc2;
  fc2.kind = snn::LayerKind::kFc;
  fc2.name = "steer";
  fc2.out_c = 5;             // steering classes
  fc2.in_c = 128;
  net.add_layer(fc2);

  sc::Rng rng(2718);
  net.init_weights(rng);

  // Calibrate to a sparse profile (energy-constrained platform).
  const auto calib = snn::make_batch(4, 11, 48, 48, 2);
  const std::vector<double> targets = {0.15, 0.12, 0.10, 0.05, 0.2};
  snn::calibrate_thresholds(net, calib, targets);

  // Explore precision: which format meets a 2 ms / 0.5 mJ budget?
  const auto frames = snn::make_batch(4, 33, 48, 48, 2);
  sc::Table t("custom 5-layer SNN: precision sweep (SpikeStream kernels)");
  t.set_header({"format", "runtime [ms]", "energy [mJ]", "avg FPU util",
                "output spikes"});
  for (auto fmt : {sc::FpFormat::FP32, sc::FpFormat::FP16, sc::FpFormat::FP8}) {
    k::RunOptions opt;
    opt.variant = k::Variant::kSpikeStream;
    opt.fmt = fmt;
    const rt::InferenceEngine engine(net, opt);
    double ms = 0, mj = 0, util = 0;
    std::size_t spikes = 0;
    for (const auto& f : frames) {
      snn::NetworkState state = engine.make_state();
      const auto res = engine.run(f, state);
      ms += res.total_runtime_ms();
      mj += res.total_energy_mj;
      for (const auto& m : res.layers) util += m.stats.fpu_utilization();
      spikes += snn::spike_count(res.final_output);
    }
    const auto n = static_cast<double>(frames.size());
    t.add_row({sc::fp_name(fmt), sc::Table::num(ms / n, 3),
               sc::Table::num(mj / n, 4),
               sc::Table::pct(util / (n * static_cast<double>(net.num_layers()))),
               std::to_string(spikes)});
  }
  t.print();
  std::printf("\nNote how FP8 halves runtime at equal spike outputs only if "
              "the quantized\nweights preserve the spike pattern — check the "
              "last column before deploying.\n");
  return 0;
}
