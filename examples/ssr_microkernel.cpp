// Driving the cycle-level cluster model directly: assemble the paper's two
// SpVA inner loops (Listings 1b and 1c) with the built-in assembler, run them
// on the Snitch-like core, and inspect the performance counters — the
// clearest way to *see* why the stream registers win.
//
//   $ ./ssr_microkernel [stream_length] [--trace]
//
// With --trace, the first instructions of the streamed kernel are printed
// cycle by cycle, showing the FREP expansion running on the FPU while the
// integer pipe is already done.
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "arch/cluster.hpp"
#include "common/rng.hpp"
#include "kernels/iss_kernels.hpp"

namespace arch = spikestream::arch;
namespace k = spikestream::kernels;
namespace sc = spikestream::common;

namespace {

void report(const char* name, const k::IssRunResult& r, int elems) {
  std::printf("%-22s %8llu cycles  %5.2f cyc/elem  FPU util %5.1f%%  "
              "IPC %.2f  (sum=%.3f)\n",
              name, static_cast<unsigned long long>(r.cycles),
              static_cast<double>(r.cycles) / elems,
              100.0 * r.perf.fpu_utilization(), r.perf.ipc(), r.value);
}

}  // namespace

int main(int argc, char** argv) {
  const int s_len = argc > 1 ? std::atoi(argv[1]) : 200;
  bool want_trace = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace") == 0) want_trace = true;
  }

  // A weight vector and a spike index list, like one SpVA of a conv layer.
  sc::Rng rng(7);
  std::vector<double> weights(512);
  for (auto& w : weights) w = rng.normal();
  std::vector<std::uint16_t> idcs;
  for (int i = 0; i < s_len; ++i) {
    idcs.push_back(static_cast<std::uint16_t>(rng.uniform_u64(512)));
  }

  std::printf("one SpVA, %d spikes, FP64 weights in TCDM\n\n", s_len);

  arch::ClusterConfig cfg;
  cfg.icache_miss_penalty = 0;
  {
    arch::Cluster cl(cfg);
    report("Listing 1b (scalar)", k::iss_baseline_spva(cl, weights, idcs),
           s_len);
  }
  {
    arch::Cluster cl(cfg);
    std::vector<arch::TraceEntry> trace;
    if (want_trace) cl.core(0).set_trace(&trace, 48);
    report("Listing 1c (SSR+FREP)",
           k::iss_spikestream_spva(cl, weights, idcs), s_len);
    if (want_trace) {
      std::printf("\n  cycle | pipe | instruction\n");
      for (const auto& e : trace) {
        std::printf("  %5llu | %s  | %s\n",
                    static_cast<unsigned long long>(e.cycle),
                    e.fpu ? "FPU" : "INT", arch::disasm(e.instr).c_str());
      }
      std::printf("\n");
    }
  }

  // Back-to-back SpVAs: shadow registers hide the setup of stream j+1
  // beneath stream j (Section III-E).
  std::printf("\n30 back-to-back SpVAs (stream setup overlapped via shadow "
              "registers):\n\n");
  std::vector<std::vector<std::uint16_t>> streams;
  int total = 0;
  for (int j = 0; j < 30; ++j) {
    std::vector<std::uint16_t> s;
    for (int i = 0; i < s_len; ++i) {
      s.push_back(static_cast<std::uint16_t>(rng.uniform_u64(512)));
    }
    total += s_len;
    streams.push_back(std::move(s));
  }
  arch::Cluster cl(cfg);
  report("SpVA sequence", k::iss_spikestream_spva_sequence(cl, weights, streams),
         total);

  std::printf("\nThe scalar loop spends 7 of 8 instructions on addressing and "
              "loop control;\nthe streamed version leaves only the fadd, "
              "bounded by the accumulation\ndependency (II = fadd latency = "
              "2 cycles).\n");
  return 0;
}
