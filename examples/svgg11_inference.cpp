// Full S-VGG11 inference — the paper's headline workload. Runs a batch of
// synthetic CIFAR-like frames through the calibrated network with the
// SpikeStream kernels and prints a per-layer execution report.
//
//   $ ./svgg11_inference [batch] [fp16|fp8] [clusters]
//
// With clusters > 1 the sharded multi-cluster backend is used: each layer's
// output-channel tiles are split across that many simulated clusters.
#include <cstdio>
#include <cstring>
#include <string>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "runtime/batch.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"

namespace snn = spikestream::snn;
namespace k = spikestream::kernels;
namespace rt = spikestream::runtime;
namespace sc = spikestream::common;

int main(int argc, char** argv) {
  const int batch = argc > 1 ? std::atoi(argv[1]) : 8;
  const bool fp8 = argc > 2 && std::strcmp(argv[2], "fp8") == 0;
  const int clusters = argc > 3 ? std::atoi(argv[3]) : 1;

  std::printf("building and calibrating S-VGG11 (this runs the dense golden "
              "reference on a calibration batch)...\n");
  snn::Network net = snn::Network::make_svgg11();
  sc::Rng rng(1);
  net.init_weights(rng);
  const auto calib = snn::make_batch(4, 20);
  snn::calibrate_thresholds(net, calib, snn::svgg11_target_rates());

  k::RunOptions opt;
  opt.variant = k::Variant::kSpikeStream;
  opt.fmt = fp8 ? sc::FpFormat::FP8 : sc::FpFormat::FP16;
  rt::BackendConfig backend;
  if (clusters > 1) {
    backend.kind = rt::BackendKind::kSharded;
    backend.clusters = clusters;
  }
  // Weights are quantized once; samples run concurrently on worker threads.
  rt::BatchRunner runner(net, opt, backend);

  const auto images = snn::make_batch(static_cast<std::size_t>(batch), 77);
  std::vector<sc::RunningStats> ms(net.num_layers()), util(net.num_layers()),
      rate(net.num_layers());
  sc::RunningStats total_ms, total_mj;
  for (const rt::InferenceResult& res : runner.run_single_step(images)) {
    for (std::size_t l = 0; l < res.layers.size(); ++l) {
      ms[l].add(res.layers[l].runtime_ms());
      util[l].add(res.layers[l].stats.fpu_utilization());
      rate[l].add(res.layers[l].in_firing_rate);
    }
    total_ms.add(res.total_runtime_ms());
    total_mj.add(res.total_energy_mj);
  }

  sc::Table t("S-VGG11 / SpikeStream " +
              std::string(sc::fp_name(opt.fmt)) + ", batch=" +
              std::to_string(batch));
  t.set_header({"layer", "runtime [ms]", "FPU util", "ifmap activity"});
  for (std::size_t l = 0; l < ms.size(); ++l) {
    t.add_row({net.layer(l).name,
               sc::Table::pm(ms[l].mean(), ms[l].stddev(), 3),
               sc::Table::pct(util[l].mean()), sc::Table::pct(rate[l].mean())});
  }
  t.print();
  std::printf("\nend-to-end: %.2f +- %.2f ms per frame, %.3f mJ per frame "
              "(1 GHz cluster)\n",
              total_ms.mean(), total_ms.stddev(), total_mj.mean());
  return 0;
}
