// Event-driven inference: feeding DVS-camera-style spike frames directly to a
// network with no encode layer, over many timesteps, with rate decoding —
// the deployment mode of neuromorphic sensors. Synthesizes a moving-bar
// stimulus whose direction the (randomly initialized, threshold-calibrated)
// network is asked to "classify"; the point is the runtime behaviour, not
// the accuracy.
//
//   $ ./event_stream [timesteps]
#include <cstdio>
#include <cstdlib>

#include "common/rng.hpp"
#include "runtime/multistep.hpp"
#include "snn/network.hpp"

namespace snn = spikestream::snn;
namespace k = spikestream::kernels;
namespace rt = spikestream::runtime;
namespace sc = spikestream::common;

namespace {

/// A bar of ON events sweeping across the field of view, plus noise events.
snn::SpikeMap event_frame(int t, int hw, int c, sc::Rng& rng) {
  snn::SpikeMap f(hw, hw, c);
  const int bar_x = 1 + (t % (hw - 2));
  for (int y = 1; y < hw - 1; ++y) {
    for (int ch = 0; ch < c; ++ch) {
      if (rng.bernoulli(0.7)) f.at(y, bar_x, ch) = 1;          // the bar
    }
  }
  for (int y = 1; y < hw - 1; ++y) {
    for (int x = 1; x < hw - 1; ++x) {
      for (int ch = 0; ch < c; ++ch) {
        if (rng.bernoulli(0.01)) f.at(y, x, ch) = 1;           // sensor noise
      }
    }
  }
  return f;
}

}  // namespace

int main(int argc, char** argv) {
  const int timesteps = argc > 1 ? std::atoi(argv[1]) : 20;

  // Network without an encode layer: events feed conv1 directly.
  snn::Network net;
  snn::LayerSpec c1;
  c1.kind = snn::LayerKind::kConv;
  c1.name = "conv1";
  c1.in_h = c1.in_w = 34;  // 32x32 sensor + padding
  c1.in_c = 2;             // ON / OFF polarities
  c1.k = 3;
  c1.out_c = 32;
  c1.pool_after = true;
  net.add_layer(c1);
  snn::LayerSpec c2;
  c2.kind = snn::LayerKind::kConv;
  c2.name = "conv2";
  c2.in_h = c2.in_w = 18;
  c2.in_c = 32;
  c2.k = 3;
  c2.out_c = 64;
  c2.pool_after = true;
  net.add_layer(c2);
  snn::LayerSpec fc;
  fc.kind = snn::LayerKind::kFc;
  fc.name = "classes";
  fc.in_c = 8 * 8 * 64;
  fc.out_c = 4;  // 4 motion directions
  net.add_layer(fc);

  sc::Rng rng(99);
  net.init_weights(rng);
  for (std::size_t l = 0; l < net.num_layers(); ++l) {
    net.layer(l).lif.v_th = 0.8f;
    net.layer(l).lif.v_rst = 0.8f;
    net.layer(l).lif.alpha = 0.85f;  // leak matters across event frames
  }

  k::RunOptions opt;
  opt.variant = k::Variant::kSpikeStream;
  opt.fmt = sc::FpFormat::FP16;
  const rt::InferenceEngine engine(net, opt);

  std::vector<snn::SpikeMap> frames;
  sc::Rng ev_rng(7);
  for (int t = 0; t < timesteps; ++t) {
    frames.push_back(event_frame(t, 34, 2, ev_rng));
  }
  snn::NetworkState state = engine.make_state();
  const rt::MultiStepResult res = rt::run_event_stream(engine, state, frames);

  std::printf("%d event frames through conv-conv-fc (SpikeStream FP16):\n\n",
              timesteps);
  std::printf("  total runtime: %.3f ms   energy: %.4f mJ   per frame: %.1f "
              "us\n",
              res.total_cycles / 1e6, res.total_energy_mj,
              res.total_cycles / timesteps / 1e3);
  std::printf("  output spike counts:");
  for (auto c : res.spike_counts) std::printf(" %u", c);
  std::printf("   -> rate-decoded class %d\n", res.argmax());
  std::printf("\nPer-frame runtime varies with event density (dynamic "
              "sparsity):\n  ");
  for (int t = 0; t < std::min<int>(timesteps, 10); ++t) {
    std::printf("%.0fk ", res.cycles_per_step[static_cast<std::size_t>(t)] / 1e3);
  }
  std::printf("cycles\n");
  return 0;
}
