// Quickstart: build a small spiking network, calibrate its thresholds, and
// run one inference with both code variants, printing the headline metrics.
//
//   $ ./quickstart
//
// This is the 5-minute tour of the public API:
//   snn::Network        — layer specs + weights
//   snn::calibrate_*    — threshold balancing to a firing-rate profile
//   runtime::InferenceEngine — executes layers with timing + energy models
#include <cstdio>
#include <vector>

#include "common/rng.hpp"
#include "runtime/engine.hpp"
#include "snn/calibrate.hpp"
#include "snn/input_gen.hpp"

namespace snn = spikestream::snn;
namespace k = spikestream::kernels;
namespace rt = spikestream::runtime;
namespace sc = spikestream::common;

int main() {
  // 1) A small 3-layer SNN: spike-encoding conv, spiking conv, classifier.
  snn::Network net = snn::Network::make_tiny(/*in_hw=*/18, /*in_c=*/3,
                                             /*mid_c=*/32, /*out_n=*/10);
  sc::Rng rng(42);
  net.init_weights(rng);

  // 2) Calibrate per-layer thresholds to a target firing-rate profile.
  const auto calib = snn::make_batch(4, 7, 16, 16, 3);
  const std::vector<double> targets = {0.20, 0.15, 0.30};
  const auto achieved = snn::calibrate_thresholds(net, calib, targets);
  std::printf("calibrated output rates:");
  for (double r : achieved) std::printf(" %.3f", r);
  std::printf("\n\n");

  // 3) Run the same image through the baseline and SpikeStream variants.
  const snn::Tensor image = snn::make_batch(1, 99, 16, 16, 3)[0];
  for (auto variant : {k::Variant::kBaseline, k::Variant::kSpikeStream}) {
    k::RunOptions opt;
    opt.variant = variant;
    opt.fmt = sc::FpFormat::FP16;
    rt::InferenceEngine engine(net, opt);
    const rt::InferenceResult res = engine.run(image);

    std::printf("%-12s: %8.1f kcycles  %6.3f mJ  ",
                k::variant_name(variant), res.total_cycles / 1e3,
                res.total_energy_mj);
    double util = 0;
    for (const auto& m : res.layers) util += m.stats.fpu_utilization();
    std::printf("avg FPU util %5.1f%%  output spikes:",
                100.0 * util / static_cast<double>(res.layers.size()));
    for (int i = 0; i < res.final_output.c; ++i) {
      std::printf(" %d", res.final_output.v[static_cast<std::size_t>(i)]);
    }
    std::printf("\n");
  }

  // 4) Scale out: the same network on 4 simulated clusters. The sharded
  //    backend splits each layer's output-channel tiles across clusters
  //    (thread workers) and produces bit-identical spikes.
  k::RunOptions opt;
  opt.fmt = sc::FpFormat::FP16;
  rt::BackendConfig sharded;
  sharded.kind = rt::BackendKind::kSharded;
  sharded.clusters = 4;
  rt::InferenceEngine engine(net, opt, sharded);
  const rt::InferenceResult res = engine.run(image);
  std::printf("%-12s: %8.1f kcycles (4 clusters)       output spikes:",
              engine.backend().name(), res.total_cycles / 1e3);
  for (int i = 0; i < res.final_output.c; ++i) {
    std::printf(" %d", res.final_output.v[static_cast<std::size_t>(i)]);
  }
  std::printf("\n");

  std::printf("\nAll backends compute identical spikes; SpikeStream just "
              "gets them sooner,\nand sharding spreads them over clusters.\n");
  return 0;
}
